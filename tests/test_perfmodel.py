"""Fixed-point solver and runtime model."""

import pytest

from repro.core import AccessPattern
from repro.errors import ConfigurationError
from repro.memory import model_for_machine
from repro.optim import TransformEffect, WorkloadState
from repro.perfmodel import RuntimeModel, solve_operating_point


def _state(machine_name="skl", **overrides):
    defaults = dict(
        workload="w",
        machine_name=machine_name,
        routine="k",
        pattern=AccessPattern.RANDOM,
        random_fraction=0.9,
        binding_level=1,
        demand_mlp=5.0,
    )
    defaults.update(overrides)
    return WorkloadState(**defaults)


class TestSolver:
    def test_consistency_with_littles_law(self, skl):
        """At the solution, BW, latency and n satisfy Equation 2."""
        point = solve_operating_point(skl, 5.0, 1)
        reconstructed = (
            point.bandwidth_bytes * point.latency_ns * 1e-9 / 64 / skl.active_cores
        )
        assert reconstructed == pytest.approx(point.n_observed, rel=1e-6)

    def test_latency_lies_on_machine_curve_when_uncapped(self, skl):
        point = solve_operating_point(skl, 5.0, 1)
        assert not point.bandwidth_capped
        model = model_for_machine(skl)
        u = point.bandwidth_bytes / skl.memory.peak_bw_bytes
        assert point.latency_ns == pytest.approx(model.latency_ns(u), rel=1e-3)

    def test_demand_clipped_at_mshr_limit(self, skl):
        low = solve_operating_point(skl, 10.0, 1)
        high = solve_operating_point(skl, 50.0, 1)  # clipped at 10 L1 MSHRs
        assert high.n_sustained == 10.0
        assert high.bandwidth_bytes == pytest.approx(low.bandwidth_bytes, rel=1e-6)

    def test_binding_level_changes_limit(self, skl):
        l1 = solve_operating_point(skl, 50.0, 1)  # limit 10
        l2 = solve_operating_point(skl, 50.0, 2)  # limit 16
        assert l2.bandwidth_bytes > l1.bandwidth_bytes

    def test_capped_regime_backs_out_latency(self, skl):
        """HPCG-on-SKL: demand exceeds the cap, latency inflates to
        keep Little's law consistent."""
        point = solve_operating_point(skl, 14.0, 2)
        assert point.bandwidth_capped
        assert point.bandwidth_bytes == pytest.approx(
            skl.memory.achievable_bw_bytes, rel=1e-3
        )
        model = model_for_machine(skl)
        u = point.bandwidth_bytes / skl.memory.peak_bw_bytes
        assert point.latency_ns >= model.latency_ns(u) - 1e-9

    def test_monotone_in_demand(self, knl):
        bws = [
            solve_operating_point(knl, d, 2).bandwidth_bytes
            for d in (1.0, 4.0, 8.0, 16.0)
        ]
        assert bws == sorted(bws)

    def test_isx_skl_operating_point(self, skl):
        """The solver regenerates Table IV row 1 from demand alone."""
        point = solve_operating_point(skl, 10.5, 1)
        assert point.bandwidth_bytes / 1e9 == pytest.approx(106.9, rel=0.03)
        assert point.latency_ns == pytest.approx(145, abs=6)

    def test_rejects_bad_demand(self, skl):
        with pytest.raises(ConfigurationError):
            solve_operating_point(skl, 0.0, 1)

    def test_rejects_bad_cores(self, skl):
        with pytest.raises(ConfigurationError):
            solve_operating_point(skl, 5.0, 1, cores=1000)

    def test_profile_as_curve(self, skl, xmem_skl_profile):
        """A measured X-Mem profile plugs in as the latency source."""
        point = solve_operating_point(skl, 5.0, 1, curve=xmem_skl_profile)
        assert point.bandwidth_bytes > 0


class TestRuntimeModel:
    def test_speedup_is_bw_over_traffic_ratio(self, skl):
        model = RuntimeModel(skl)
        base = _state()
        after = TransformEffect(demand_factor=1.5, traffic_factor=1.2).apply(
            base, "smt2"
        )
        pred_base = model.predict(base)
        pred_after = model.predict(after)
        expected = (
            pred_after.point.bandwidth_bytes / pred_base.point.bandwidth_bytes
        ) / 1.2
        assert model.speedup(base, after) == pytest.approx(expected, rel=1e-9)

    def test_traffic_reduction_speeds_up_at_cap(self, skl):
        """Tiling at saturated bandwidth: speedup = traffic ratio."""
        model = RuntimeModel(skl)
        base = _state(binding_level=2, demand_mlp=20.0, pattern=AccessPattern.STREAMING)
        tiled = TransformEffect(traffic_factor=0.7).apply(base, "loop_tiling")
        assert model.speedup(base, tiled) == pytest.approx(1.0 / 0.7, rel=1e-3)

    def test_machine_mismatch_rejected(self, skl):
        with pytest.raises(ConfigurationError):
            RuntimeModel(skl).predict(_state(machine_name="knl"))

    def test_prediction_exposes_observables(self, skl):
        pred = RuntimeModel(skl).predict(_state())
        assert pred.bandwidth_gbs > 0
        assert pred.latency_ns > 0
        assert pred.n_avg > 0
