"""Measurement ingestion: CSV and perf-style parsing into analyses."""

import pytest

from repro.errors import ConfigurationError
from repro.io import (
    RoutineMeasurement,
    analyze_measurements,
    from_csv,
    from_perf_output,
)


@pytest.fixture(autouse=True)
def _fault_free_baseline():
    """This file asserts exact parse results: park any ambient
    ``REPRO_FAULTS`` spec (CI fault leg) and restore it afterwards."""
    import os

    from repro.resilience import configure_faults

    ambient = os.environ.get("REPRO_FAULTS")
    configure_faults(None)
    yield
    configure_faults(ambient)


class TestCsv:
    def test_basic_rows(self):
        text = (
            "routine,bandwidth_gbs,prefetch_fraction\n"
            "count_local_keys,106.9,0.05\n"
            "ComputeSPMV_ref,109.9,0.80\n"
        )
        rows = from_csv(text)
        assert len(rows) == 2
        assert rows[0].routine == "count_local_keys"
        assert rows[0].bandwidth_bytes == pytest.approx(106.9e9)

    def test_comments_and_blank_lines(self):
        text = "# comment\n\nkernel,50.0,0.5\n"
        assert len(from_csv(text)) == 1

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            from_csv("routine,bandwidth,pf\n")

    def test_short_row_rejected(self):
        with pytest.raises(ConfigurationError):
            from_csv("kernel,50.0\n")

    def test_measurement_validation(self):
        with pytest.raises(ConfigurationError):
            RoutineMeasurement("k", -1.0, 0.5)
        with pytest.raises(ConfigurationError):
            RoutineMeasurement("k", 1e9, 1.5)


class TestPerfOutput:
    def test_plain_aligned_format(self, skl):
        # 1 second, 1e9 demand lines + 0.5e9 prefetch lines of 64B.
        text = """
         1,000,000,000      OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL
           500,000,000      OFFCORE_RESPONSE_1:PF_ANY:L3_MISS_LOCAL
         9,999,999,999      INST_RETIRED.ANY
        """
        m = from_perf_output(text, skl, elapsed_seconds=1.0, routine="r")
        assert m.bandwidth_bytes == pytest.approx(1.5e9 * 64)
        assert m.prefetch_fraction == pytest.approx(1 / 3)

    def test_csv_format(self, skl):
        text = (
            "1000000000,,OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL\n"
            "123,,CPU_CLK_UNHALTED.THREAD\n"
        )
        m = from_perf_output(text, skl, elapsed_seconds=2.0)
        assert m.bandwidth_bytes == pytest.approx(1e9 * 64 / 2.0)

    def test_a64fx_bus_counters(self, a64fx):
        text = """
         2,000,000      BUS_READ_TOTAL_MEM
         1,000,000      BUS_WRITE_TOTAL_MEM
        """
        m = from_perf_output(text, a64fx, elapsed_seconds=0.001)
        # 3e6 lines x 256B / 1ms
        assert m.bandwidth_bytes == pytest.approx(3e6 * 256 / 1e-3)

    def test_unknown_events_ignored(self, skl):
        text = """
         42      SOME_UNRELATED_EVENT
         1,000   OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL
        """
        m = from_perf_output(text, skl, elapsed_seconds=1.0)
        assert m.bandwidth_bytes == pytest.approx(1000 * 64)

    def test_no_bandwidth_events_rejected(self, skl):
        with pytest.raises(ConfigurationError) as err:
            from_perf_output("42 SOMETHING_ELSE", skl, elapsed_seconds=1.0)
        assert "OFFCORE" in str(err.value)

    def test_empty_input_rejected(self, skl):
        with pytest.raises(ConfigurationError):
            from_perf_output("", skl, elapsed_seconds=1.0)

    def test_bad_elapsed_rejected(self, skl):
        with pytest.raises(ConfigurationError):
            from_perf_output("1 X", skl, elapsed_seconds=0.0)


class TestAnalyzeMeasurements:
    def test_batch_analysis_matches_direct(self, skl):
        measurements = from_csv(
            "count_local_keys,106.9,0.05\nComputeSPMV_ref,109.9,0.80\n"
        )
        reports = analyze_measurements(skl, measurements)
        assert len(reports) == 2
        isx, hpcg = reports
        assert isx.decision.binding_level == 1
        assert isx.mlp.n_avg == pytest.approx(10.1, rel=0.05)
        assert hpcg.decision.binding_level == 2

    def test_with_measured_profile(self, skl, xmem_skl_profile):
        measurements = [RoutineMeasurement("k", 60e9, 0.5)]
        reports = analyze_measurements(skl, measurements, profile=xmem_skl_profile)
        assert reports[0].mlp.n_avg > 0


class TestCsvErrorLocations:
    def test_short_row_names_line_number(self):
        text = "ok,50.0,0.5\nonly_two,1.0\n"
        with pytest.raises(ConfigurationError, match="line 2"):
            from_csv(text)

    def test_bad_cell_names_line_column_and_cell(self):
        text = "ok,50.0,0.5\nbad,fast,0.5\n"
        with pytest.raises(ConfigurationError) as info:
            from_csv(text)
        message = str(info.value)
        assert "line 2" in message
        assert "bandwidth_gbs" in message
        assert "'fast'" in message

    def test_nan_cell_rejected_with_location(self):
        with pytest.raises(ConfigurationError, match="line 1.*NaN"):
            from_csv("bad,nan,0.5\n")

    def test_out_of_range_value_carries_line_number(self):
        with pytest.raises(ConfigurationError, match="line 2"):
            from_csv("ok,50.0,0.5\nbad,50.0,1.5\n")

    def test_line_numbers_count_comments_and_blanks(self):
        text = "# header comment\n\nok,50.0,0.5\nbad,slow,0.5\n"
        with pytest.raises(ConfigurationError, match="line 4"):
            from_csv(text)


class TestCsvDegraded:
    def test_clean_input_has_no_issues(self):
        from repro.io import from_csv_degraded

        rows, issues = from_csv_degraded("a,50.0,0.5\nb,60.0,0.8\n")
        assert [r.routine for r in rows] == ["a", "b"]
        assert issues == []

    def test_bad_rows_become_issues_not_errors(self):
        from repro.io import from_csv_degraded

        text = (
            "good,50.0,0.5\n"
            "short,1.0\n"
            "nonnum,fast,0.5\n"
            "range,50.0,1.5\n"
            "tail,70.0,0.2\n"
        )
        rows, issues = from_csv_degraded(text)
        assert [r.routine for r in rows] == ["good", "tail"]
        kinds = [issue.kind for issue in issues]
        assert kinds == ["skipped-row", "bad-cell", "bad-cell"]
        assert issues[0].location == "line 2"
        # Details are not doubly prefixed with the location.
        assert not issues[1].detail.startswith("line")

    def test_all_bad_input_still_raises(self):
        from repro.io import from_csv_degraded

        with pytest.raises(ConfigurationError, match="no measurement rows"):
            from_csv_degraded("a,fast,0.5\nb,also_fast,0.5\n")

    def test_injected_counter_drop_reports_dropped_samples(self):
        from repro.io import from_csv_degraded
        from repro.resilience import configure_faults

        text = "a,50.0,0.5\nb,60.0,0.8\nc,70.0,0.2\n"
        try:
            configure_faults("counter_drop:p=0.5,seed=1")
            rows1, issues1 = from_csv_degraded(text)
            rows2, issues2 = from_csv_degraded(text)
        finally:
            configure_faults(None)
        # Deterministic: both passes drop exactly the same rows.
        assert [r.routine for r in rows1] == [r.routine for r in rows2]
        assert [i.location for i in issues1] == [i.location for i in issues2]
        assert len(rows1) + len(issues1) == 3
        assert all(i.kind == "dropped-sample" for i in issues1)

    def test_injected_counter_nan_reports_nan_bandwidth(self):
        from repro.io import from_csv_degraded
        from repro.resilience import configure_faults

        try:
            configure_faults("counter_nan:p=1,seed=0")
            with pytest.raises(ConfigurationError):
                # Every row NaNs out -> nothing survives.
                from_csv_degraded("a,50.0,0.5\n")
        finally:
            configure_faults(None)
