"""Measurement ingestion: CSV and perf-style parsing into analyses."""

import pytest

from repro.errors import ConfigurationError
from repro.io import (
    RoutineMeasurement,
    analyze_measurements,
    from_csv,
    from_perf_output,
)


class TestCsv:
    def test_basic_rows(self):
        text = (
            "routine,bandwidth_gbs,prefetch_fraction\n"
            "count_local_keys,106.9,0.05\n"
            "ComputeSPMV_ref,109.9,0.80\n"
        )
        rows = from_csv(text)
        assert len(rows) == 2
        assert rows[0].routine == "count_local_keys"
        assert rows[0].bandwidth_bytes == pytest.approx(106.9e9)

    def test_comments_and_blank_lines(self):
        text = "# comment\n\nkernel,50.0,0.5\n"
        assert len(from_csv(text)) == 1

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            from_csv("routine,bandwidth,pf\n")

    def test_short_row_rejected(self):
        with pytest.raises(ConfigurationError):
            from_csv("kernel,50.0\n")

    def test_measurement_validation(self):
        with pytest.raises(ConfigurationError):
            RoutineMeasurement("k", -1.0, 0.5)
        with pytest.raises(ConfigurationError):
            RoutineMeasurement("k", 1e9, 1.5)


class TestPerfOutput:
    def test_plain_aligned_format(self, skl):
        # 1 second, 1e9 demand lines + 0.5e9 prefetch lines of 64B.
        text = """
         1,000,000,000      OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL
           500,000,000      OFFCORE_RESPONSE_1:PF_ANY:L3_MISS_LOCAL
         9,999,999,999      INST_RETIRED.ANY
        """
        m = from_perf_output(text, skl, elapsed_seconds=1.0, routine="r")
        assert m.bandwidth_bytes == pytest.approx(1.5e9 * 64)
        assert m.prefetch_fraction == pytest.approx(1 / 3)

    def test_csv_format(self, skl):
        text = (
            "1000000000,,OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL\n"
            "123,,CPU_CLK_UNHALTED.THREAD\n"
        )
        m = from_perf_output(text, skl, elapsed_seconds=2.0)
        assert m.bandwidth_bytes == pytest.approx(1e9 * 64 / 2.0)

    def test_a64fx_bus_counters(self, a64fx):
        text = """
         2,000,000      BUS_READ_TOTAL_MEM
         1,000,000      BUS_WRITE_TOTAL_MEM
        """
        m = from_perf_output(text, a64fx, elapsed_seconds=0.001)
        # 3e6 lines x 256B / 1ms
        assert m.bandwidth_bytes == pytest.approx(3e6 * 256 / 1e-3)

    def test_unknown_events_ignored(self, skl):
        text = """
         42      SOME_UNRELATED_EVENT
         1,000   OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL
        """
        m = from_perf_output(text, skl, elapsed_seconds=1.0)
        assert m.bandwidth_bytes == pytest.approx(1000 * 64)

    def test_no_bandwidth_events_rejected(self, skl):
        with pytest.raises(ConfigurationError) as err:
            from_perf_output("42 SOMETHING_ELSE", skl, elapsed_seconds=1.0)
        assert "OFFCORE" in str(err.value)

    def test_empty_input_rejected(self, skl):
        with pytest.raises(ConfigurationError):
            from_perf_output("", skl, elapsed_seconds=1.0)

    def test_bad_elapsed_rejected(self, skl):
        with pytest.raises(ConfigurationError):
            from_perf_output("1 X", skl, elapsed_seconds=0.0)


class TestAnalyzeMeasurements:
    def test_batch_analysis_matches_direct(self, skl):
        measurements = from_csv(
            "count_local_keys,106.9,0.05\nComputeSPMV_ref,109.9,0.80\n"
        )
        reports = analyze_measurements(skl, measurements)
        assert len(reports) == 2
        isx, hpcg = reports
        assert isx.decision.binding_level == 1
        assert isx.mlp.n_avg == pytest.approx(10.1, rel=0.05)
        assert hpcg.decision.binding_level == 2

    def test_with_measured_profile(self, skl, xmem_skl_profile):
        measurements = [RoutineMeasurement("k", 60e9, 0.5)]
        reports = analyze_measurements(skl, measurements, profile=xmem_skl_profile)
        assert reports[0].mlp.n_avg > 0
