"""On-disk trace files: round trips, the mmap fast path, and integrity."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.io import TRACE_FILE_FORMAT, load_trace, save_trace
from repro.io.tracefile import _mmap_members
from repro.sim.coltrace import ColumnarTrace, trace_digest
from repro.sim.trace import Access, AccessKind, ThreadTrace, Trace


def _fixture_trace():
    return Trace(
        (
            ThreadTrace(
                0,
                (
                    Access(0, AccessKind.LOAD, 1.0),
                    Access(64, AccessKind.SWPF_L2, 0.5),
                    Access(128, AccessKind.STORE, 2.0),
                ),
            ),
            ThreadTrace(1, (Access(4096, AccessKind.LOAD, 3.0),)),
        ),
        routine="filetest",
        line_bytes=64,
    )


class TestRoundTrip:
    def test_save_load_preserves_content_and_digest(self, tmp_path):
        trace = _fixture_trace()
        path = tmp_path / "t.trace"
        meta = save_trace(path, trace)
        assert meta["format"] == TRACE_FILE_FORMAT
        loaded = load_trace(path)
        assert isinstance(loaded, ColumnarTrace)
        assert loaded.to_trace() == trace
        assert trace_digest(loaded) == meta["sha256"] == trace_digest(trace)

    def test_columnar_input_round_trips(self, tmp_path):
        col = ColumnarTrace.from_trace(_fixture_trace())
        path = tmp_path / "t.trace"
        save_trace(path, col)
        assert load_trace(path) == col

    def test_compressed_round_trips_via_fallback(self, tmp_path):
        trace = _fixture_trace()
        path = tmp_path / "t.trace"
        save_trace(path, trace, compress=True)
        with pytest.raises(TraceError):
            _mmap_members(path)  # compressed members defeat the fast path
        assert load_trace(path).to_trace() == trace


class TestMmapFastPath:
    def test_members_are_memory_mapped(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(path, _fixture_trace())
        members = _mmap_members(path)
        arrays = [a for name, a in members.items() if name != "meta"]
        assert arrays and all(isinstance(a, np.memmap) for a in arrays)

    def test_mmap_and_copy_loads_agree(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(path, _fixture_trace())
        assert load_trace(path, mmap=True) == load_trace(path, mmap=False)

    def test_loaded_arrays_read_only(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(path, _fixture_trace())
        loaded = load_trace(path)
        with pytest.raises(ValueError):
            loaded.threads[0].addr[0] = 99


class TestIntegrity:
    def test_corrupted_payload_detected(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(path, _fixture_trace())
        # Flip a byte inside the first address array's payload (the
        # memmap offset locates it exactly).
        offset = _mmap_members(path)["t0_addr"].offset
        data = bytearray(path.read_bytes())
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_not_a_trace_file(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, x=np.arange(3))
        with pytest.raises(TraceError, match="meta"):
            load_trace(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.trace"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(TraceError):
            load_trace(path)
