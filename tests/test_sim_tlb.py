"""TLB modeling and page-walk traffic (paper footnote 4)."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim import SimConfig, Tlb, run_trace, trace_from_addresses


class TestTlbUnit:
    def test_hit_after_install(self):
        tlb = Tlb(4)
        assert not tlb.access(0)  # cold miss installs
        assert tlb.access(100)  # same page
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1

    def test_lru_eviction(self):
        tlb = Tlb(2)
        tlb.access(0 * 4096)
        tlb.access(1 * 4096)
        tlb.access(0 * 4096)  # refresh page 0
        tlb.access(2 * 4096)  # evicts page 1
        assert tlb.access(0 * 4096)
        assert not tlb.access(1 * 4096)

    def test_page_of(self):
        tlb = Tlb(4, page_bytes=4096)
        assert tlb.page_of(4095) == 0
        assert tlb.page_of(4096) == 1

    def test_pte_addresses_distinct_per_page(self):
        tlb = Tlb(4)
        assert tlb.pte_address(0) != tlb.pte_address(4096)
        assert tlb.pte_address(1) == tlb.pte_address(100)

    def test_pte_region_far_from_data(self):
        assert Tlb(4).pte_address(0) >= 1 << 44

    def test_validation(self):
        with pytest.raises(SimulationError):
            Tlb(0)
        with pytest.raises(SimulationError):
            Tlb(4, page_bytes=1000)  # not a power of two

    def test_resident_pages_bounded(self):
        tlb = Tlb(3)
        for page in range(10):
            tlb.access(page * 4096)
        assert tlb.resident_pages == 3


class TestTlbInHierarchy:
    def _trace(self, n=1200, spread_pages=True, seed=3):
        rng = random.Random(seed)
        if spread_pages:
            addrs = [[rng.randrange(1 << 23) * 64 for _ in range(n)] for _ in range(2)]
        else:
            addrs = [[(i % 32) * 64 for i in range(n)] for _ in range(2)]
        return trace_from_addresses(addrs, line_bytes=64, gap_cycles=2.0)

    def test_walks_add_memory_traffic(self, skl):
        """Random pages + small TLB inflate counted bandwidth bytes —
        the footnote-4 effect the paper's method absorbs correctly."""
        trace = self._trace()
        off = run_trace(
            trace, SimConfig(machine=skl, sim_cores=2, window_per_core=16)
        )
        on = run_trace(
            trace,
            SimConfig(machine=skl, sim_cores=2, window_per_core=16, tlb_entries=64),
        )
        assert on.memory.total_bytes > 1.3 * off.memory.total_bytes
        assert on.elapsed_ns > off.elapsed_ns

    def test_page_local_workload_unaffected(self, skl):
        """A footprint within the TLB reach sees (almost) no walks."""
        trace = self._trace(spread_pages=False)
        on = run_trace(
            trace,
            SimConfig(machine=skl, sim_cores=2, window_per_core=16, tlb_entries=64),
        )
        off = run_trace(
            trace, SimConfig(machine=skl, sim_cores=2, window_per_core=16)
        )
        assert on.memory.total_bytes <= off.memory.total_bytes + 2 * 64

    def test_prefetches_skip_translation_modeling(self, skl):
        """SW prefetches don't block on the modeled TLB (they are hints)."""
        from repro.sim import Access, AccessKind, ThreadTrace, Trace

        accesses = tuple(
            Access(i * 4096, AccessKind.SWPF_L2, 2.0) for i in range(1, 200)
        )
        trace = Trace((ThreadTrace(0, accesses),), line_bytes=64)
        stats = run_trace(
            trace,
            SimConfig(machine=skl, sim_cores=1, window_per_core=8, tlb_entries=16),
        )
        # All traffic is the prefetches themselves; no walk reads.
        assert stats.memory.demand_read_bytes == 0

    def test_littles_law_still_holds_with_tlb(self, skl):
        trace = self._trace()
        stats = run_trace(
            trace,
            SimConfig(machine=skl, sim_cores=2, window_per_core=16, tlb_entries=64),
        )
        assert stats.littles_law_check(2)["relative_error"] < 0.02
