"""Checkpoint/resume: JSONL durability, corruption handling, byte-identical resume."""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

import pytest

from repro.errors import CheckpointError
from repro.perf.cache import stable_digest
from repro.resilience import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    SweepCheckpoint,
    dataclass_codec,
    run_checkpointed,
)


@dataclass(frozen=True)
class _Point:
    """Stand-in sweep result: flat JSON-scalar dataclass."""

    x: int
    y: float


def _compute(x: int) -> _Point:
    return _Point(x=x, y=x * 0.5)


def _fail_on_three(x: int) -> _Point:
    if x == 3:
        raise ValueError("boom on 3")
    return _compute(x)


def _key(x: int) -> str:
    return stable_digest({"harness": "test-sweep", "x": x})


def _dump(results) -> str:
    """Canonical byte-level form of a result list."""
    return json.dumps([dataclasses.asdict(r) for r in results], sort_keys=True)


class TestSweepCheckpoint:
    def test_missing_file_is_empty(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "ck.jsonl", label="t")
        assert not ck.exists
        assert ck.load() == {}

    def test_record_load_roundtrip(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "ck.jsonl", label="t")
        ck.record("k1", {"a": 1})
        ck.record("k2", [1, 2.5, "s"])
        assert ck.exists
        assert ck.load() == {"k1": {"a": 1}, "k2": [1, 2.5, "s"]}

    def test_header_written_once(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "ck.jsonl", label="t")
        ck.record("k1", 1)
        ck.record("k2", 2)
        lines = (tmp_path / "ck.jsonl").read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "label": "t",
        }
        assert len(lines) == 3

    def test_clear_discards(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "ck.jsonl")
        ck.record("k", 1)
        ck.clear()
        assert not ck.exists
        ck.clear()  # idempotent on a missing file

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(path, label="t")
        ck.record("k1", 1)
        ck.record("k2", 2)
        text = path.read_text()
        path.write_text(text[: len(text) - 8])  # tear the last append
        assert ck.load() == {"k1": 1}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(path, label="t")
        ck.record("k1", 1)
        ck.record("k2", 2)
        lines = path.read_text().splitlines()
        lines[1] = '{"key": "k1", "val'  # corrupt a NON-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="line 2"):
            ck.load()

    def test_foreign_label_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        SweepCheckpoint(path, label="xmem:skl").record("k", 1)
        with pytest.raises(CheckpointError, match="belongs to harness"):
            SweepCheckpoint(path, label="xmem:knl").load()

    def test_unlabeled_reader_accepts_any_label(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        SweepCheckpoint(path, label="xmem:skl").record("k", 1)
        assert SweepCheckpoint(path).load() == {"k": 1}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text(
            json.dumps({"format": CHECKPOINT_FORMAT, "version": 999, "label": ""})
            + "\n"
        )
        with pytest.raises(CheckpointError, match="version"):
            SweepCheckpoint(path).load()

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text('{"hello": "world"}\n{"key": "k", "value": 1}\n')
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            SweepCheckpoint(path).load()


class TestRunCheckpointed:
    def _codec(self):
        return dataclass_codec(_Point)

    def test_no_checkpoint_is_plain_fan_out(self):
        encode, decode = self._codec()
        results = run_checkpointed(
            _compute,
            [0, 1, 2],
            checkpoint=None,
            key_fn=_key,
            encode=encode,
            decode=decode,
        )
        assert results == [_compute(x) for x in range(3)]

    def test_fresh_run_records_every_item(self, tmp_path):
        encode, decode = self._codec()
        ck = SweepCheckpoint(tmp_path / "ck.jsonl", label="t")
        results = run_checkpointed(
            _compute, [0, 1, 2], checkpoint=ck, key_fn=_key,
            encode=encode, decode=decode,
        )
        assert [r.x for r in results] == [0, 1, 2]
        assert set(ck.load()) == {_key(x) for x in range(3)}

    def test_recorded_items_are_not_recomputed(self, tmp_path):
        encode, decode = self._codec()
        ck = SweepCheckpoint(tmp_path / "ck.jsonl", label="t")
        for x in (0, 1):
            ck.record(_key(x), encode(_compute(x)))
        # _fail_on_three would die on 3; with 3 already recorded the
        # resume must replay it instead of calling the function.
        ck.record(_key(3), encode(_compute(3)))
        results = run_checkpointed(
            _fail_on_three, [0, 1, 2, 3], checkpoint=ck, key_fn=_key,
            encode=encode, decode=decode,
        )
        assert results == [_compute(x) for x in range(4)]

    def test_interrupted_then_resumed_is_byte_identical(self, tmp_path):
        encode, decode = self._codec()
        items = [0, 1, 2, 3, 4]
        uninterrupted = run_checkpointed(
            _compute, items, checkpoint=None, key_fn=_key,
            encode=encode, decode=decode,
        )
        # First pass dies on item 3 (chunk=1 records each success
        # durably before the failure propagates — the "kill").
        ck = SweepCheckpoint(tmp_path / "ck.jsonl", label="t")
        with pytest.raises(ValueError, match="boom on 3"):
            run_checkpointed(
                _fail_on_three, items, checkpoint=ck, key_fn=_key,
                encode=encode, decode=decode, chunk=1,
            )
        recorded = ck.load()
        assert set(recorded) == {_key(x) for x in (0, 1, 2)}
        # Resume with the healthy function: only 3 and 4 run fresh.
        resumed = run_checkpointed(
            _compute, items, checkpoint=ck, key_fn=_key,
            encode=encode, decode=decode,
        )
        assert _dump(resumed) == _dump(uninterrupted)

    def test_failure_is_raised_after_chunk_successes_recorded(self, tmp_path):
        encode, decode = self._codec()
        ck = SweepCheckpoint(tmp_path / "ck.jsonl", label="t")
        # One chunk holds [2, 3, 4]: 3 fails but 2 and 4 must be durable.
        with pytest.raises(ValueError, match="boom on 3"):
            run_checkpointed(
                _fail_on_three, [2, 3, 4], checkpoint=ck, key_fn=_key,
                encode=encode, decode=decode, chunk=3,
            )
        assert set(ck.load()) == {_key(2), _key(4)}

    def test_results_round_trip_through_codec(self, tmp_path):
        # Fresh results must pass through encode/decode so that a
        # resumed run can never differ from an uninterrupted one.
        def encode_lossy(p):
            return {"x": p.x, "y": round(p.y, 1)}

        def decode_lossy(doc):
            return _Point(**doc)

        ck = SweepCheckpoint(tmp_path / "ck.jsonl", label="t")
        results = run_checkpointed(
            lambda x: _Point(x=x, y=x * 0.123456),
            [1],
            checkpoint=ck,
            key_fn=_key,
            encode=encode_lossy,
            decode=decode_lossy,
        )
        assert results[0].y == round(1 * 0.123456, 1)


class TestHarnessIntegration:
    def test_operating_curve_resumes_byte_identically(self, tmp_path, skl):
        from repro.core.sweep import operating_curve

        plain = operating_curve(skl, points=5)
        ck = SweepCheckpoint(tmp_path / "curve.jsonl", label="t")
        first = operating_curve(skl, points=5, checkpoint=ck)
        assert ck.exists
        resumed = operating_curve(skl, points=5, checkpoint=ck)
        assert _dump(first) == _dump(plain)
        assert _dump(resumed) == _dump(plain)

    def test_prefetch_distance_sweep_checkpoints(self, tmp_path):
        from repro.experiments.ablation import prefetch_distance_sweep

        ck = SweepCheckpoint(tmp_path / "pd.jsonl", label="t")
        kwargs = dict(
            distances=(0, 4), accesses_per_thread=400, checkpoint=ck
        )
        first = prefetch_distance_sweep(**kwargs)
        assert len(ck.load()) == 2
        resumed = prefetch_distance_sweep(**kwargs)
        assert _dump(resumed) == _dump(first)

    def test_xmem_sweep_checkpoints(self, tmp_path, skl):
        from repro.xmem import XMemConfig
        from repro.xmem.runner import XMemRunner

        config = XMemConfig(levels=3, accesses_per_thread=300)
        runner = XMemRunner(skl, config)
        ck = SweepCheckpoint(tmp_path / "xmem.jsonl", label="t")
        first = runner.sweep(checkpoint=ck)
        assert len(ck.load()) == 3
        resumed = runner.sweep(checkpoint=ck)
        assert _dump(resumed) == _dump(first)

    def test_cross_validate_checkpoints(self, tmp_path):
        from repro.experiments import cross_validate
        from repro.machines import get_machine
        from repro.workloads import get_workload

        ck = SweepCheckpoint(tmp_path / "cv.jsonl", label="t")
        kwargs = dict(
            machines=[get_machine("skl")],
            workloads=[get_workload("isx")],
            accesses_per_thread=600,
            checkpoint=ck,
        )
        first = cross_validate(**kwargs)
        assert len(ck.load()) == len(first) == 1
        resumed = cross_validate(**kwargs)
        assert _dump(resumed) == _dump(first)
