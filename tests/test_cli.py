"""CLI surface: every subcommand end to end (capsys-based)."""

import json

import pytest

from repro.cli import build_parser, main


class TestMachines:
    def test_lists_all_three(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "skl" in out and "knl" in out and "a64fx" in out


class TestAnalyze:
    def test_isx_knl_analysis(self, capsys):
        code = main(
            [
                "analyze",
                "--machine",
                "knl",
                "--bandwidth",
                "233",
                "--pattern",
                "random",
                "--routine",
                "count_local_keys",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "count_local_keys" in out
        assert "L1" in out
        assert "sw_prefetch_l2" in out  # the recipe's headline move

    def test_saturated_case_stops(self, capsys):
        main(
            [
                "analyze",
                "--machine",
                "skl",
                "--bandwidth",
                "106.9",
                "--pattern",
                "random",
            ]
        )
        assert "STOP" in capsys.readouterr().out


class TestCharacterize:
    def test_profile_output_and_save(self, capsys, tmp_path, monkeypatch):
        out_path = tmp_path / "p.json"
        # Shrink the sweep for test speed.
        code = main(
            [
                "characterize",
                "--machine",
                "skl",
                "--levels",
                "3",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        assert "latency profile" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert doc["machine"] == "skl"


class TestReproduce:
    def test_single_table(self, capsys):
        assert main(["reproduce", "--table", "comd"]) == 0
        out = capsys.readouterr().out
        assert "Table VII" in out
        assert "within tolerance" in out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        assert "L1-MSHR ceiling" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_machine_rejected_by_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--machine", "epyc", "--bandwidth", "1"])
