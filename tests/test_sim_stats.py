"""SimStats / OccupancyTracker / MemoryStats unit behaviour."""

import pytest

from repro.sim import OccupancyTracker, SimStats
from repro.sim.stats import CoreStats, LevelStats, MemoryStats


class TestOccupancyTracker:
    def test_integral_accumulates(self):
        tracker = OccupancyTracker("t", capacity=4)
        tracker.add(0.0, +2)
        tracker.add(10.0, -1)  # 2 held for 10ns
        tracker.update(20.0)  # 1 held for 10ns
        assert tracker.integral_ns == pytest.approx(30.0)
        assert tracker.average(20.0) == pytest.approx(1.5)

    def test_negative_occupancy_rejected(self):
        tracker = OccupancyTracker("t", capacity=4)
        with pytest.raises(ValueError):
            tracker.add(0.0, -1)

    def test_over_capacity_rejected(self):
        tracker = OccupancyTracker("t", capacity=1)
        tracker.add(0.0, +1)
        with pytest.raises(ValueError):
            tracker.add(1.0, +1)

    def test_time_backwards_rejected(self):
        tracker = OccupancyTracker("t", capacity=4)
        tracker.update(10.0)
        with pytest.raises(ValueError):
            tracker.update(5.0)

    def test_average_of_empty_window(self):
        assert OccupancyTracker("t", 4).average(0.0) == 0.0

    def test_full_flag(self):
        tracker = OccupancyTracker("t", capacity=2)
        tracker.add(0.0, +2)
        assert tracker.is_full


class TestLevelStats:
    def test_miss_rate(self):
        level = LevelStats(hits=75, misses=25)
        assert level.accesses == 100
        assert level.miss_rate == pytest.approx(0.25)

    def test_miss_rate_empty(self):
        assert LevelStats().miss_rate == 0.0


class TestMemoryStats:
    def test_totals_and_fractions(self):
        mem = MemoryStats(
            demand_read_bytes=100.0, demand_write_bytes=50.0, prefetch_bytes=50.0
        )
        assert mem.total_bytes == 200.0
        assert mem.prefetch_fraction == pytest.approx(0.25)

    def test_avg_latency_empty(self):
        assert MemoryStats().avg_latency_ns == 0.0

    def test_prefetch_fraction_empty(self):
        assert MemoryStats().prefetch_fraction == 0.0


class TestSimStats:
    def test_bandwidth_zero_without_time(self):
        assert SimStats().bandwidth_bytes_per_s() == 0.0

    def test_avg_occupancy_without_trackers(self):
        assert SimStats().avg_occupancy(1) == 0.0

    def test_finalize_closes_trackers(self):
        stats = SimStats()
        tracker = OccupancyTracker("t", capacity=4)
        tracker.add(0.0, +1)
        stats.l1_occupancy.append(tracker)
        stats.finalize(100.0)
        assert stats.elapsed_ns == 100.0
        assert tracker.integral_ns == pytest.approx(100.0)

    def test_per_core_vs_total_occupancy(self):
        stats = SimStats()
        for _ in range(2):
            tracker = OccupancyTracker("t", capacity=8)
            tracker.add(0.0, +4)
            stats.l1_occupancy.append(tracker)
        stats.finalize(10.0)
        assert stats.avg_occupancy(1, per_core=True) == pytest.approx(4.0)
        assert stats.avg_occupancy(1, per_core=False) == pytest.approx(8.0)

    def test_mshr_full_fraction(self):
        stats = SimStats()
        tracker = OccupancyTracker("t", capacity=1)
        tracker.add(0.0, +1)
        tracker.add(5.0, -1)
        stats.l1_occupancy.append(tracker)
        stats.finalize(10.0)
        assert stats.mshr_full_fraction(1) == pytest.approx(0.5)

    def test_littles_law_check_empty(self):
        check = SimStats().littles_law_check()
        assert check["relative_error"] == 0.0

    def test_core_stats_defaults(self):
        core = CoreStats()
        assert not core.finished
        assert core.issued_accesses == 0
