"""Memory controller: bandwidth cap, curve-driven latency, writebacks."""

import pytest

from repro.memory import TabulatedLatencyModel
from repro.sim import Engine, MemoryController
from repro.sim.stats import MemoryStats


def _controller(engine, peak=10e9, achievable=1.0, line=64):
    model = TabulatedLatencyModel([(0.0, 100.0), (1.0, 200.0)])
    return MemoryController(
        engine,
        model,
        peak_bw_bytes=peak,
        achievable_fraction=achievable,
        line_bytes=line,
        stats=MemoryStats(),
    )


class TestLatency:
    def test_idle_request_sees_idle_latency(self):
        engine = Engine()
        mc = _controller(engine)
        done = []
        mc.request(is_write=False, is_prefetch=False, on_complete=lambda: done.append(engine.now))
        engine.run()
        assert done[0] == pytest.approx(100.0, abs=1.0)

    def test_loaded_requests_see_higher_latency(self):
        engine = Engine()
        mc = _controller(engine, peak=10e9)
        times = []
        issue_interval = 64 / 10e9 * 1e9  # exactly the slot time: 100% load

        def issue(i=0):
            if i < 400:
                mc.request(
                    is_write=False,
                    is_prefetch=False,
                    on_complete=lambda: times.append(engine.now),
                )
                engine.schedule(issue_interval, lambda: issue(i + 1))

        issue()
        engine.run()
        # Late requests should see near-saturated latency (~200ns).
        assert mc.stats.latency_sum_ns / mc.stats.latency_count > 150.0

    def test_current_latency_reflects_recent_traffic(self):
        engine = Engine()
        mc = _controller(engine)
        assert mc.current_latency_ns(0.0) == pytest.approx(100.0)


class TestBandwidthCap:
    def test_admission_rate_is_capped(self):
        """N back-to-back requests take at least N * slot time."""
        engine = Engine()
        mc = _controller(engine, peak=10e9, achievable=0.5)  # 5 GB/s cap
        n = 100
        done = []
        for _ in range(n):
            mc.request(is_write=False, is_prefetch=False, on_complete=lambda: done.append(engine.now))
        engine.run()
        min_span = (n - 1) * 64 / 5e9 * 1e9  # admission slots
        assert max(done) - min(done) >= min_span * 0.95

    def test_byte_accounting(self):
        engine = Engine()
        mc = _controller(engine)
        mc.request(is_write=False, is_prefetch=False, on_complete=lambda: None)
        mc.request(is_write=True, is_prefetch=False, on_complete=lambda: None)
        mc.request(is_write=False, is_prefetch=True, on_complete=lambda: None)
        engine.run()
        assert mc.stats.demand_read_bytes == 64
        assert mc.stats.demand_write_bytes == 64
        assert mc.stats.prefetch_bytes == 64
        assert mc.stats.prefetch_fraction == pytest.approx(1 / 3)


class TestWriteback:
    def test_writeback_consumes_bandwidth_without_latency(self):
        engine = Engine()
        mc = _controller(engine)
        mc.writeback()
        engine.run()
        assert mc.stats.demand_write_bytes == 64
        assert mc.stats.latency_count == 0  # no MSHR-held request

    def test_writebacks_delay_subsequent_reads(self):
        engine = Engine()
        mc = _controller(engine, peak=1e9, achievable=1.0)  # slot = 64ns
        done = []
        for _ in range(10):
            mc.writeback()
        mc.request(is_write=False, is_prefetch=False, on_complete=lambda: done.append(engine.now))
        engine.run()
        assert done[0] >= 10 * 64.0  # queued behind the writebacks
