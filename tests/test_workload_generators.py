"""Access-pattern generator building blocks."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.sim import AccessKind
from repro.workloads.generators import (
    REGION_STRIDE,
    cached_compute,
    gather_accesses,
    random_updates,
    region_base,
    short_bursts,
    unit_streams,
)


class TestRandomUpdates:
    def test_mix_of_loads_and_stores(self):
        out = random_updates(400, 64, np.random.default_rng(1), write_fraction=0.5)
        kinds = {a.kind for a in out}
        assert AccessKind.LOAD in kinds and AccessKind.STORE in kinds

    def test_prefetch_interleaving(self):
        out = random_updates(
            200, 64, np.random.default_rng(1), prefetch_to_l2=True, prefetch_distance=8
        )
        swpf = [a for a in out if a.kind == AccessKind.SWPF_L2]
        assert len(swpf) == 200 - 8  # one per update except the tail

    def test_prefetch_targets_future_demand(self):
        out = random_updates(
            100, 64, np.random.default_rng(1), prefetch_to_l2=True, prefetch_distance=4
        )
        demands = [a.addr for a in out if a.kind != AccessKind.SWPF_L2]
        swpf = [a.addr for a in out if a.kind == AccessKind.SWPF_L2]
        # Every prefetch address is later demanded.
        assert set(swpf) <= set(demands)

    def test_addresses_line_aligned(self):
        out = random_updates(100, 64, np.random.default_rng(1))
        assert all(a.addr % 64 == 0 for a in out)

    def test_rejects_zero_count(self):
        with pytest.raises(TraceError):
            random_updates(0, 64, np.random.default_rng(1))


class TestUnitStreams:
    def test_streams_interleaved_round_robin(self):
        out = unit_streams(12, 64, streams=3, element_bytes=8)
        # Consecutive accesses rotate across stream regions.
        regions = [a.addr // (32 * 1024 * 1024) for a in out[:3]]
        assert len(set(regions)) == 3

    def test_store_stream_marks_last(self):
        out = unit_streams(8, 64, streams=4, store_stream=True)
        stores = [a for a in out if a.kind == AccessKind.STORE]
        assert len(stores) == 2  # every 4th access

    def test_unit_stride_within_stream(self):
        out = unit_streams(9, 64, streams=3, element_bytes=8)
        stream0 = [a.addr for a in out if a.addr < 32 * 1024 * 1024]
        assert stream0 == sorted(stream0)
        assert stream0[1] - stream0[0] == 8


class TestGatherAccesses:
    def test_zero_locality_spreads_wide(self):
        out = gather_accesses(500, 64, np.random.default_rng(1), locality=0.0)
        lines = {a.addr // 64 for a in out}
        assert len(lines) > 400  # nearly all distinct

    def test_high_locality_clusters(self):
        spread_hi = gather_accesses(300, 64, np.random.default_rng(1), locality=0.95)
        spread_lo = gather_accesses(300, 64, np.random.default_rng(1), locality=0.0)
        unique_hi = len({a.addr // 64 for a in spread_hi})
        unique_lo = len({a.addr // 64 for a in spread_lo})
        assert unique_hi < unique_lo

    def test_rejects_bad_locality(self):
        with pytest.raises(TraceError):
            gather_accesses(10, 64, np.random.default_rng(1), locality=1.5)


class TestShortBursts:
    def test_burst_structure(self):
        out = short_bursts(96, 64, np.random.default_rng(1), burst_elements=48)
        demands = [a for a in out if a.kind == AccessKind.LOAD]
        assert len(demands) == 96

    def test_sw_prefetch_precedes_bursts(self):
        out = short_bursts(
            96, 64, np.random.default_rng(1), burst_elements=48, sw_prefetch=True
        )
        assert out[0].kind == AccessKind.SWPF_L1
        swpf = sum(1 for a in out if a.kind == AccessKind.SWPF_L1)
        assert swpf > 0

    def test_rejects_zero_burst(self):
        with pytest.raises(TraceError):
            short_bursts(10, 64, np.random.default_rng(1), burst_elements=0)


class TestCachedCompute:
    def test_mostly_hot_footprint(self):
        out = cached_compute(
            500, 64, np.random.default_rng(1), footprint_bytes=16 * 1024, miss_fraction=0.05
        )
        hot = sum(1 for a in out if a.addr < REGION_STRIDE // 2)
        assert hot > 400

    def test_miss_fraction_zero_stays_hot(self):
        out = cached_compute(200, 64, np.random.default_rng(1), miss_fraction=0.0)
        assert all(a.addr < REGION_STRIDE // 2 for a in out)

    def test_rejects_bad_fraction(self):
        with pytest.raises(TraceError):
            cached_compute(10, 64, np.random.default_rng(1), miss_fraction=2.0)


class TestRegions:
    def test_region_bases_disjoint(self):
        assert region_base(1) - region_base(0) == REGION_STRIDE

    def test_negative_region_rejected(self):
        with pytest.raises(TraceError):
            region_base(-1)
