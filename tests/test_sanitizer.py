"""reprosan: the runtime invariant sanitizer (repro.analysis.sanitizer).

Covers the unit level (QueueAudit's exact interval identity), the
end-to-end level (sanitized runs over every paper workload x machine
with zero violations), and the two no-perturbation guarantees: the
fingerprint of a sanitized run is identical to an unsanitized one, and
sanitized runs never touch the SimStats cache.
"""

import math

import pytest

from repro.analysis.sanitizer import (
    ABS_TOL_NS,
    DEFAULT_WINDOW_NS,
    REL_TOL,
    QueueAudit,
    last_report,
    sanitize_enabled,
    sanitize_window_ns,
)
from repro.errors import SanitizerError
from repro.sim import SimConfig, run_trace
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import TraceSpec
from repro.xmem.kernels import resident_trace, throughput_trace


@pytest.fixture
def sanitize(monkeypatch):
    """Arm sanitize mode for one test."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")


# -- QueueAudit unit level --------------------------------------------------------


class TestQueueAudit:
    def test_integral_equals_residence_sum(self):
        audit = QueueAudit("q", window_ns=100.0)
        audit.enter(0.0, "a", site="t")
        audit.enter(10.0, "b", site="t")
        audit.exit(25.0, "a")
        audit.enter(30.0, "c", site="t")
        audit.exit(90.0, "b")
        audit.exit(130.0, "c")
        audit.close(150.0)
        # Residences: a=25, b=80, c=100 -> 205; the occupancy integral
        # covers the same elementary intervals.
        assert audit.residence_sum_ns == pytest.approx(205.0)
        assert math.isclose(
            audit.integral_ns,
            audit.residence_sum_ns,
            rel_tol=REL_TOL,
            abs_tol=ABS_TOL_NS,
        )
        assert audit.window_mismatches() == []

    def test_windowed_identity_across_boundaries(self):
        audit = QueueAudit("q", window_ns=16.0)
        # One long residence spanning many windows plus short ones.
        audit.enter(3.0, 1, site="t")
        audit.enter(20.0, 2, site="t")
        audit.exit(21.0, 2)
        audit.exit(77.0, 1)
        audit.close(80.0)
        assert audit.window_mismatches() == []
        total_occ = sum(audit.occ_windows.values())
        assert total_occ == pytest.approx(audit.integral_ns)
        total_res = sum(audit.res_windows.values())
        assert total_res == pytest.approx(audit.residence_sum_ns)

    def test_leak_reported_with_site(self):
        audit = QueueAudit("q", window_ns=50.0)
        audit.enter(5.0, 0xABC, site="issue_path:42")
        audit.close(60.0)
        leaked = audit.leaked()
        assert leaked == [(0xABC, 5.0, "issue_path:42")]

    def test_capacity_breach_raises(self):
        audit = QueueAudit("q", capacity=1, window_ns=50.0)
        audit.enter(0.0, "a", site="t")
        with pytest.raises(SanitizerError) as err:
            audit.enter(1.0, "b", site="t")
        assert err.value.invariant == "mshr-balance"

    def test_unmatched_exit_raises(self):
        audit = QueueAudit("q", window_ns=50.0)
        with pytest.raises(SanitizerError) as err:
            audit.exit(1.0, "ghost")
        assert err.value.invariant == "mshr-balance"

    def test_time_reversal_raises(self):
        audit = QueueAudit("q", window_ns=50.0)
        audit.enter(10.0, "a", site="t")
        with pytest.raises(SanitizerError) as err:
            audit.exit(5.0, "a")
        assert err.value.invariant == "event-monotonic"


def test_window_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE_WINDOW_NS", "512")
    assert sanitize_window_ns() == 512.0
    monkeypatch.setenv("REPRO_SANITIZE_WINDOW_NS", "not-a-number")
    assert sanitize_window_ns() == DEFAULT_WINDOW_NS
    monkeypatch.delenv("REPRO_SANITIZE_WINDOW_NS")
    assert sanitize_window_ns() == DEFAULT_WINDOW_NS


# -- end-to-end: sanitized runs hold every invariant ------------------------------


def test_sanitized_run_clean_and_audited(sanitize, skl):
    assert sanitize_enabled()
    trace = throughput_trace(
        threads=2, accesses_per_thread=2000, line_bytes=skl.line_bytes
    )
    run_trace(trace, SimConfig(machine=skl, sim_cores=2))
    report = last_report()
    assert report is not None and report.ok
    names = {q["queue"] for q in report.queues}
    assert "memctrl" in names
    assert any("L1-MSHR" in n for n in names)
    # Little's law holds per queue: avg occupancy == rate x latency.
    for row in report.queues:
        assert row["avg_occupancy"] == pytest.approx(
            row["rate_times_latency"], rel=1e-6, abs=1e-9
        )
        assert row["windows_checked"] > 0


def test_batch_replay_checks_run(sanitize, skl):
    trace = resident_trace(
        threads=2, accesses_per_thread=20_000, line_bytes=skl.line_bytes
    )
    run_trace(
        trace,
        SimConfig(machine=skl, sim_cores=2, batch=True, tlb_entries=64),
    )
    report = last_report()
    assert report is not None and report.ok
    assert report.replay_checks > 0


@pytest.mark.parametrize("workload", [w.name for w in ALL_WORKLOADS])
@pytest.mark.parametrize("machine_name", ["skl", "knl", "a64fx"])
def test_paper_workloads_validate_under_sanitizer(
    sanitize, workload, machine_name, all_machines
):
    """Acceptance: every paper workload x machine, zero violations."""
    from repro.machines import get_machine
    from repro.workloads import get_workload

    machine = get_machine(machine_name)
    trace = get_workload(workload).generate_trace(
        machine, spec=TraceSpec(threads=2, accesses_per_thread=400)
    )
    run_trace(trace, SimConfig(machine=machine, sim_cores=2, tlb_entries=64))
    report = last_report()
    assert report is not None and report.ok
    assert all(row["windows_checked"] > 0 for row in report.queues)


# -- no-perturbation guarantees ---------------------------------------------------


def test_fingerprint_identical_sanitized_vs_not(monkeypatch, skl):
    trace = throughput_trace(
        threads=2, accesses_per_thread=1500, line_bytes=skl.line_bytes
    )
    config = SimConfig(machine=skl, sim_cores=2)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    plain = run_trace(trace, config)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = run_trace(trace, config)
    assert sanitized.fingerprint() == plain.fingerprint()


def test_sanitized_runs_bypass_sim_cache(monkeypatch, tmp_path, skl):
    from repro.perf.cache import SimCache, cached_run_trace

    trace = throughput_trace(
        threads=1, accesses_per_thread=800, line_bytes=skl.line_bytes
    )
    config = SimConfig(machine=skl, sim_cores=1)
    cache = SimCache(tmp_path, enabled=True)

    # Unsanitized: miss then store, then a hit.
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    cached_run_trace(trace, config, cache=cache)
    assert cache.counters.stores == 1
    cached_run_trace(trace, config, cache=cache)
    assert cache.counters.hits == 1

    # Sanitized: neither served from the cache nor written to it.
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    before = cache.counters.snapshot()
    cached_run_trace(trace, config, cache=cache)
    assert cache.counters.hits == before.hits
    assert cache.counters.misses == before.misses
    assert cache.counters.stores == before.stores
