"""Combination stress: every simulator feature on at once, invariants hold.

Hypothesis drives random traces through the hierarchy with SMT, the
TLB, the shared L3, hardware prefetch, and software prefetch hints all
enabled simultaneously — the configurations unit tests exercise only in
isolation.  The invariants: runs terminate, every access retires,
occupancies respect capacities, byte accounting balances, and Little's
law holds at the memory controller.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import get_machine
from repro.sim import (
    Access,
    AccessKind,
    SimConfig,
    ThreadTrace,
    Trace,
    run_trace,
)

SKL = get_machine("skl")


def _mixed_trace(seed: int, n: int, threads: int, swpf_share: float) -> Trace:
    rng = random.Random(seed)
    thread_traces = []
    for t in range(threads):
        accesses = []
        stream_base = (t + 1) << 28
        stream_off = 0
        for i in range(n):
            roll = rng.random()
            if roll < swpf_share:
                kind = AccessKind.SWPF_L2 if rng.random() < 0.5 else AccessKind.SWPF_L1
                addr = rng.randrange(1 << 22) * 64
                accesses.append(Access(addr, kind, 1.0))
            elif roll < 0.55:
                addr = rng.randrange(1 << 22) * 64
                kind = AccessKind.STORE if rng.random() < 0.3 else AccessKind.LOAD
                accesses.append(Access(addr, kind, rng.choice([1.0, 2.0, 8.0])))
            else:
                accesses.append(Access(stream_base + stream_off, AccessKind.LOAD, 2.0))
                stream_off += 8
        thread_traces.append(ThreadTrace(t, tuple(accesses)))
    return Trace(tuple(thread_traces), routine="stress", line_bytes=64)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    n=st.integers(150, 600),
    threads_per_core=st.integers(1, 2),
    swpf_share=st.floats(0.0, 0.3),
    window=st.integers(2, 20),
    tlb_entries=st.sampled_from([0, 32, 128]),
    l3=st.booleans(),
)
def test_all_features_together(
    seed, n, threads_per_core, swpf_share, window, tlb_entries, l3
):
    threads = 2 * threads_per_core
    trace = _mixed_trace(seed, n, threads, swpf_share)
    cfg = SimConfig(
        machine=SKL,
        sim_cores=2,
        threads_per_core=threads_per_core,
        window_per_core=max(window, threads_per_core),
        tlb_entries=tlb_entries,
        l3_enabled=l3,
    )
    stats = run_trace(trace, cfg)

    # Termination and retirement.
    assert all(core.finished for core in stats.cores)
    assert sum(core.issued_accesses for core in stats.cores) == trace.total_accesses

    # Capacity invariants.
    for tracker in stats.l1_occupancy:
        assert tracker.peak <= SKL.l1.mshrs
    for tracker in stats.l2_occupancy:
        assert tracker.peak <= SKL.l2.mshrs

    # Byte accounting balances at line granularity.
    assert stats.memory.total_bytes % 64 == 0
    assert stats.memory.requests * 64 == stats.memory.total_bytes

    # Little's law at the controller, whenever enough requests flowed.
    if stats.memory.latency_count > 30:
        assert stats.littles_law_check(2)["relative_error"] < 0.05
