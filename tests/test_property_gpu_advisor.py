"""Property tests: GPU occupancy math and the CPU advisor loop."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Advisor, KEEP_THRESHOLD
from repro.gpu import GpuAdvisor, KernelDescriptor, a100_like, occupancy
from repro.machines import paper_machines
from repro.workloads import ALL_WORKLOADS

GPU = a100_like()

kernels = st.builds(
    KernelDescriptor,
    name=st.just("k"),
    threads_per_block=st.integers(32, 1024),
    registers_per_thread=st.integers(0, 255),
    shared_mem_per_block_bytes=st.integers(0, 160 * 1024),
    mlp_per_warp=st.floats(min_value=0.1, max_value=16.0),
    coalescing=st.floats(min_value=0.05, max_value=1.0),
)


class TestGpuOccupancyProperties:
    @given(kernel=kernels)
    def test_active_warps_within_every_limit(self, kernel):
        report = occupancy(GPU, kernel)
        assert 0 <= report.active_warps <= report.warp_limit
        assert report.active_warps <= max(1, report.register_limit) or (
            report.active_warps == 0
        )
        assert report.active_warps <= GPU.max_warps_per_sm

    @given(kernel=kernels)
    def test_limiter_is_the_binding_one(self, kernel):
        report = occupancy(GPU, kernel)
        limits = {
            "warp_slots": report.warp_limit,
            "registers": report.register_limit,
            "shared_memory": report.shared_mem_limit,
            "block_slots": report.block_limit,
        }
        assert limits[report.limiter] == min(limits.values())

    @given(kernel=kernels)
    def test_fewer_registers_never_reduce_occupancy(self, kernel):
        if kernel.registers_per_thread == 0:
            return
        slimmer = KernelDescriptor(
            name="k",
            threads_per_block=kernel.threads_per_block,
            registers_per_thread=kernel.registers_per_thread - 1,
            shared_mem_per_block_bytes=kernel.shared_mem_per_block_bytes,
            mlp_per_warp=kernel.mlp_per_warp,
            coalescing=kernel.coalescing,
        )
        assert (
            occupancy(GPU, slimmer).active_warps
            >= occupancy(GPU, kernel).active_warps
        )

    @given(kernel=kernels)
    def test_advisor_always_produces_a_recommendation(self, kernel):
        analysis = GpuAdvisor(GPU).analyze(kernel)
        assert analysis.recommendations
        assert analysis.mshr_demand_per_sm >= 0


class TestAdvisorLoopProperties:
    @settings(max_examples=18, deadline=None)
    @given(
        workload_idx=st.integers(0, len(ALL_WORKLOADS) - 1),
        machine_idx=st.integers(0, 2),
        max_iterations=st.integers(1, 8),
    )
    def test_trajectory_invariants(self, workload_idx, machine_idx, max_iterations):
        workload = ALL_WORKLOADS[workload_idx]
        machine = paper_machines()[machine_idx]
        result = Advisor(workload, machine, max_iterations=max_iterations).run()
        # Every kept step clears the keep threshold.
        for step in result.steps:
            assert step.predicted_speedup >= KEEP_THRESHOLD
        # No step applied twice; labels compose from the steps.
        names = [s.step for s in result.steps]
        assert len(names) == len(set(names))
        assert len(result.steps) <= max_iterations
        # Cumulative speedup is the product of the steps.
        product = 1.0
        for step in result.steps:
            product *= step.predicted_speedup
        assert abs(product - result.cumulative_speedup) < 1e-9
