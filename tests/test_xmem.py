"""X-Mem substitute: kernels and the characterize sweep."""

import pytest

from repro.errors import ProfileError, TraceError
from repro.memory import model_for_machine
from repro.xmem import (
    XMemConfig,
    XMemRunner,
    gap_sweep,
    pointer_chase_addresses,
    pointer_chase_trace,
    throughput_trace,
)


class TestKernels:
    def test_pointer_chase_addresses_line_aligned(self):
        addrs = pointer_chase_addresses(100, 64)
        assert all(a % 64 == 0 for a in addrs)

    def test_pointer_chase_is_deterministic(self):
        assert pointer_chase_addresses(50, 64, seed=3) == pointer_chase_addresses(
            50, 64, seed=3
        )

    def test_pointer_chase_trace(self):
        trace = pointer_chase_trace(40, 64)
        assert len(trace) == 40

    def test_pointer_chase_rejects_zero(self):
        with pytest.raises(TraceError):
            pointer_chase_addresses(0, 64)

    def test_throughput_trace_thread_regions_disjoint(self):
        trace = throughput_trace(
            threads=2, accesses_per_thread=100, line_bytes=64, streams_per_thread=2
        )
        t0 = {a.addr >> 26 for a in trace.threads[0].accesses}
        t1 = {a.addr >> 26 for a in trace.threads[1].accesses}
        assert not (t0 & t1)

    def test_gap_sweep_ends_at_zero(self):
        gaps = gap_sweep(6)
        assert len(gaps) == 6
        assert gaps[-1] == 0.0
        assert gaps[0] > gaps[1] > gaps[2]

    def test_gap_sweep_needs_two_levels(self):
        with pytest.raises(TraceError):
            gap_sweep(1)


class TestCharacterization:
    def test_profile_shape(self, xmem_skl_profile, skl):
        profile = xmem_skl_profile
        assert profile.machine_name == "skl"
        assert profile.source == "xmem"
        # Reaches a large fraction of achievable bandwidth.
        assert profile.max_measured_bw_bytes > 0.8 * skl.memory.achievable_bw_bytes
        # Monotone by construction.
        lats = [p.latency_ns for p in profile.points]
        assert lats == sorted(lats)

    def test_measured_curve_tracks_calibrated_curve(self, xmem_skl_profile, skl):
        """The characterize -> analyze loop closes (DESIGN.md §5).

        At mid-load the measured latency matches the machine's calibrated
        curve; near saturation admission queueing adds measured delay on
        top (a real-measurement artifact, also present in X-Mem)."""
        model = model_for_machine(skl)
        mid_bw = 0.5 * skl.memory.peak_bw_bytes
        measured = xmem_skl_profile.latency_at(mid_bw)
        truth = model.latency_ns(0.5)
        # Bursty load generators queue at admission, so the measurement
        # sits above the pure curve but never below it, and within ~1.5x.
        assert truth * 0.95 <= measured <= truth * 1.5

    def test_idle_latency_near_machine_idle(self, xmem_skl_profile, skl):
        assert xmem_skl_profile.idle_latency_ns <= 1.6 * skl.memory.idle_latency_ns

    def test_measurement_and_levels(self, knl):
        runner = XMemRunner(knl, XMemConfig(levels=3, accesses_per_thread=800))
        measurements = runner.sweep()
        assert len(measurements) == 3
        # More load (smaller gap) -> at least as much bandwidth.
        assert measurements[-1].bandwidth_bytes >= measurements[0].bandwidth_bytes

    def test_sim_cores_guard(self, skl):
        with pytest.raises(ProfileError):
            XMemRunner(skl, XMemConfig(sim_cores=100))

    def test_utilization_field(self, skl):
        runner = XMemRunner(skl, XMemConfig(levels=2, accesses_per_thread=500))
        m = runner.measure_level(0.0)
        assert m.utilization == pytest.approx(
            m.bandwidth_bytes / skl.memory.peak_bw_bytes
        )
