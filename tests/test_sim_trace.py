"""Trace records and builders."""

import pytest

from repro.errors import TraceError
from repro.sim import Access, AccessKind, ThreadTrace, Trace, trace_from_addresses
from repro.sim.trace import interleave_kinds


class TestAccessKind:
    def test_prefetch_classification(self):
        assert AccessKind.SWPF_L2.is_prefetch
        assert AccessKind.SWPF_L1.is_prefetch
        assert not AccessKind.LOAD.is_prefetch
        assert AccessKind.STORE.is_demand


class TestAccess:
    def test_rejects_negative_address(self):
        with pytest.raises(TraceError):
            Access(-1)

    def test_rejects_negative_gap(self):
        with pytest.raises(TraceError):
            Access(0, gap_cycles=-1.0)


class TestThreadTrace:
    def test_demand_count_excludes_prefetch(self):
        trace = ThreadTrace(
            0,
            (
                Access(0, AccessKind.LOAD),
                Access(64, AccessKind.SWPF_L2),
                Access(128, AccessKind.STORE),
            ),
        )
        assert len(trace) == 3
        assert trace.demand_count == 2

    def test_rejects_negative_thread_id(self):
        with pytest.raises(TraceError):
            ThreadTrace(-1, ())


class TestTrace:
    def test_totals(self):
        trace = trace_from_addresses([[0, 64], [128]], routine="r")
        assert trace.total_accesses == 3
        assert trace.total_demand == 3
        assert trace.routine == "r"

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            Trace(threads=())

    def test_rejects_duplicate_thread_ids(self):
        t = ThreadTrace(0, (Access(0),))
        with pytest.raises(TraceError):
            Trace(threads=(t, t))

    def test_rejects_bad_line_bytes(self):
        t = ThreadTrace(0, (Access(0),))
        with pytest.raises(TraceError):
            Trace(threads=(t,), line_bytes=0)


class TestBuilders:
    def test_trace_from_addresses_kinds_and_gaps(self):
        trace = trace_from_addresses(
            [[0, 64]], kind=AccessKind.STORE, gap_cycles=3.0
        )
        acc = trace.threads[0].accesses[0]
        assert acc.kind == AccessKind.STORE
        assert acc.gap_cycles == 3.0

    def test_interleave_kinds_cycles_pattern(self):
        out = interleave_kinds(
            [0, 64, 128, 192], [AccessKind.LOAD, AccessKind.STORE]
        )
        assert [a.kind for a in out] == [
            AccessKind.LOAD,
            AccessKind.STORE,
            AccessKind.LOAD,
            AccessKind.STORE,
        ]

    def test_interleave_rejects_empty_pattern(self):
        with pytest.raises(TraceError):
            interleave_kinds([0], [])
