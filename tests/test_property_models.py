"""Property-based tests on latency models, profiles, and the recipe."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    Benefit,
    Classification,
    AccessPattern,
    MlpCalculator,
    OptimizationKind,
    Recipe,
    RecipeContext,
)
from repro.machines import get_machine
from repro.memory import LatencyProfile, QueueingLatencyModel, TabulatedLatencyModel
from repro.optim import TransformEffect, WorkloadState

MACHINES = {name: get_machine(name) for name in ("skl", "knl", "a64fx")}

utils = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestQueueingModelProperties:
    @given(
        idle=st.floats(min_value=10.0, max_value=500.0),
        u1=utils,
        u2=utils,
    )
    def test_monotone(self, idle, u1, u2):
        model = QueueingLatencyModel(idle_ns=idle)
        lo, hi = sorted((u1, u2))
        assert model.latency_ns(hi) >= model.latency_ns(lo)

    @given(idle=st.floats(min_value=10.0, max_value=500.0), u=utils)
    def test_never_below_idle(self, idle, u):
        model = QueueingLatencyModel(idle_ns=idle)
        assert model.latency_ns(u) >= idle


class TestTabulatedModelProperties:
    @st.composite
    def calibrations(draw):
        n = draw(st.integers(min_value=2, max_value=8))
        # Utilizations on a 1e-6 grid: the model merges control points
        # closer than float-safe interpolation spacing, so generating
        # already-separated points keeps every example valid.
        ticks = sorted(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=10**6),
                    min_size=n,
                    max_size=n,
                    unique=True,
                )
            )
        )
        us = [t / 1e6 for t in ticks]
        lats = sorted(
            draw(
                st.lists(
                    st.floats(min_value=1.0, max_value=1000.0),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        return list(zip(us, lats))

    @given(points=calibrations(), u1=utils, u2=utils)
    def test_interpolation_monotone(self, points, u1, u2):
        model = TabulatedLatencyModel(points)
        lo, hi = sorted((u1, u2))
        assert model.latency_ns(hi) >= model.latency_ns(lo) - 1e-9

    @given(points=calibrations(), u=utils)
    def test_within_calibrated_range(self, points, u):
        model = TabulatedLatencyModel(points)
        lats = [l for _, l in model.points]
        value = model.latency_ns(u)
        assert min(lats) - 1e-9 <= value <= max(lats) + 1e-9


class TestProfileProperties:
    @given(
        samples=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=128e9),
                st.floats(min_value=1.0, max_value=1000.0),
            ),
            min_size=2,
            max_size=12,
        )
    )
    def test_from_samples_always_valid(self, samples):
        bws = [b for b, _ in samples]
        assume(len(set(bws)) == len(bws))
        profile = LatencyProfile.from_samples("m", 128e9, samples)
        lats = [p.latency_ns for p in profile.points]
        assert lats == sorted(lats)  # rectified to monotone

    @given(
        samples=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=128e9),
                st.floats(min_value=1.0, max_value=1000.0),
            ),
            min_size=2,
            max_size=12,
        )
    )
    def test_json_roundtrip_preserves_queries(self, samples):
        bws = [b for b, _ in samples]
        assume(len(set(bws)) == len(bws))
        profile = LatencyProfile.from_samples("m", 128e9, samples)
        clone = LatencyProfile.from_json(profile.to_json())
        probe = profile.max_measured_bw_bytes / 2
        assert math.isclose(
            clone.latency_at(probe), profile.latency_at(probe), rel_tol=1e-12
        )


class TestRecipeInvariants:
    @settings(max_examples=80, deadline=None)
    @given(
        machine_name=st.sampled_from(["skl", "knl", "a64fx"]),
        bw_fraction=st.floats(min_value=0.001, max_value=0.99),
        pattern=st.sampled_from(list(AccessPattern)),
    )
    def test_decision_always_well_formed(self, machine_name, bw_fraction, pattern):
        machine = MACHINES[machine_name]
        mlp = MlpCalculator(machine).calculate(
            bw_fraction * machine.memory.peak_bw_bytes
        )
        decision = Recipe(machine).decide(
            mlp, Classification(pattern, 0.5, rationale="prop")
        )
        assert decision.binding_level == (1 if pattern is AccessPattern.RANDOM else 2)
        assert decision.mshr_limit == machine.mshr_limit(decision.binding_level)
        values = [r.benefit.value for r in decision.recommendations]
        assert values == sorted(values, reverse=True)

    @settings(max_examples=80, deadline=None)
    @given(
        machine_name=st.sampled_from(["skl", "knl", "a64fx"]),
        bw_fraction=st.floats(min_value=0.001, max_value=0.99),
        pattern=st.sampled_from(list(AccessPattern)),
    )
    def test_full_queue_never_recommends_mlp_increase(
        self, machine_name, bw_fraction, pattern
    ):
        """Flowchart branch 1: occupancy ≈ size -> no MLP-increasing opt.

        (SW prefetch to L2 is the sanctioned exception: it *shifts* the
        binding queue rather than pushing the full one.)
        """
        machine = MACHINES[machine_name]
        mlp = MlpCalculator(machine).calculate(
            bw_fraction * machine.memory.peak_bw_bytes
        )
        decision = Recipe(machine).decide(
            mlp, Classification(pattern, 0.5, rationale="prop")
        )
        if decision.occupancy_ratio >= 0.95:
            assert decision.benefit_of(OptimizationKind.VECTORIZATION) in (
                Benefit.NONE,
            )
            assert decision.benefit_of(OptimizationKind.SMT) is Benefit.NONE

    @settings(max_examples=50, deadline=None)
    @given(
        machine_name=st.sampled_from(["skl", "knl", "a64fx"]),
        bw_fraction=st.floats(min_value=0.94, max_value=0.99),
    )
    def test_saturated_bandwidth_blocks_mlp_increase(self, machine_name, bw_fraction):
        machine = MACHINES[machine_name]
        bw = bw_fraction * machine.memory.achievable_bw_bytes
        mlp = MlpCalculator(machine).calculate(bw)
        decision = Recipe(machine).decide(
            mlp, Classification(AccessPattern.STREAMING, 0.8, rationale="prop")
        )
        assert decision.bandwidth_saturated
        assert not decision.benefit_of(OptimizationKind.VECTORIZATION).expects_speedup


class TestTransformAlgebra:
    @st.composite
    def states(draw):
        return WorkloadState(
            workload="w",
            machine_name="skl",
            routine="k",
            pattern=draw(st.sampled_from(list(AccessPattern))),
            random_fraction=draw(utils),
            binding_level=draw(st.sampled_from([1, 2])),
            demand_mlp=draw(st.floats(min_value=0.01, max_value=64.0)),
            traffic_factor=draw(st.floats(min_value=0.1, max_value=4.0)),
        )

    @given(
        state=states(),
        f1=st.floats(min_value=0.2, max_value=4.0),
        f2=st.floats(min_value=0.2, max_value=4.0),
    )
    def test_demand_factors_compose_multiplicatively(self, state, f1, f2):
        a = TransformEffect(demand_factor=f1).apply(state, "vectorize")
        b = TransformEffect(demand_factor=f2).apply(a, "smt2")
        assert math.isclose(b.demand_mlp, state.demand_mlp * f1 * f2, rel_tol=1e-9)

    @given(state=states(), f=st.floats(min_value=0.2, max_value=4.0))
    def test_traffic_factor_composes(self, state, f):
        after = TransformEffect(traffic_factor=f).apply(state, "loop_tiling")
        assert math.isclose(
            after.traffic_factor, state.traffic_factor * f, rel_tol=1e-9
        )

    @given(state=states())
    def test_apply_preserves_identity_fields(self, state):
        after = TransformEffect().apply(state, "vectorize")
        assert after.workload == state.workload
        assert after.machine_name == state.machine_name
        assert after.pattern == state.pattern
