"""Sanitizer-visible fault kinds: each planted bug trips its invariant.

``mshr_leak``, ``time_skew``, and ``replay_skip`` corrupt the simulator
in ways that are invisible to ordinary assertions — a leaked MSHR entry
still simulates, a skewed latency still sums, a dropped replay run
still leaves a structurally valid LRU list.  These tests prove the
sanitizer is the witness: each fault must surface as a structured
:class:`~repro.errors.SanitizerError` naming the violated invariant.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.sanitizer import CacheReplayChecker
from repro.errors import SanitizerError
from repro.machines import CacheSpec
from repro.resilience import configure_faults, parse_fault_spec
from repro.sim import SimConfig, run_trace
from repro.sim.cache import CacheArray
from repro.xmem.kernels import throughput_trace


@pytest.fixture(autouse=True)
def _sanitize_and_disarm(monkeypatch):
    """Sanitize mode on, injector inert, ambient spec restored after."""
    ambient = os.environ.get("REPRO_FAULTS")
    configure_faults(None)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    yield
    configure_faults(ambient)


def test_sanitizer_fault_kinds_parse():
    rules = parse_fault_spec("mshr_leak;time_skew:skew=0.25;replay_skip")
    assert set(rules) == {"mshr_leak", "time_skew", "replay_skip"}
    assert rules["time_skew"].params["skew"] == 0.25


def test_mshr_leak_trips_balance_check(skl):
    # Every release is swallowed; a tiny trace keeps the file from
    # deadlocking before finalize can audit it.
    configure_faults("mshr_leak:p=1")
    trace = throughput_trace(
        threads=1, accesses_per_thread=6, line_bytes=skl.line_bytes
    )
    with pytest.raises(SanitizerError) as err:
        run_trace(trace, SimConfig(machine=skl, sim_cores=1))
    assert err.value.invariant == "mshr-balance"
    # The leak report carries allocation-site tags.
    assert "allocated at" in str(err.value)
    report = err.value.report
    assert report is not None and not report.ok
    assert any(v.invariant == "mshr-balance" for v in report.violations)


def test_time_skew_trips_littles_law(skl):
    # Telemetry records a skewed latency while physics uses the true
    # one: L = lambda*W no longer matches the latency sum.
    configure_faults("time_skew:p=1,skew=0.5")
    trace = throughput_trace(
        threads=2, accesses_per_thread=400, line_bytes=skl.line_bytes
    )
    with pytest.raises(SanitizerError) as err:
        run_trace(trace, SimConfig(machine=skl, sim_cores=2))
    assert err.value.invariant == "littles-law"
    report = err.value.report
    assert report is not None
    assert any(v.invariant == "littles-law" for v in report.violations)


class _CapturingRunner:
    """Stands in for RunSanitizer at the replay-checker seam."""

    def __init__(self):
        self.calls = []

    def violate(self, invariant, message, *, snapshot=None):
        self.calls.append((invariant, message))


def test_replay_skip_trips_batch_replay_check():
    # Dropping a replay run is only observable when runs alias into the
    # same set *and* are not order-preserving cycles; build exactly
    # that: all ways of set 0, touched once in reversed order.
    configure_faults("replay_skip:p=1")
    spec = CacheSpec(
        level=1, size_bytes=4096, line_bytes=64, mshrs=10, associativity=8
    )
    array = CacheArray(spec, "t.L1")
    runner = _CapturingRunner()
    array._sanitizer = CacheReplayChecker(array, runner)

    lines = [i * array.num_sets * array.line_bytes for i in range(array.ways)]
    for line in lines:
        array.fill(line)

    array.touch_batch(
        np.array(lines[3::-1], dtype=np.int64), np.zeros(4, dtype=bool)
    )
    array.touch_batch(
        np.array(lines[4:], dtype=np.int64), np.zeros(len(lines) - 4, dtype=bool)
    )
    array.flush_batch()  # the armed fault silently drops the first run

    assert runner.calls, "sanitizer did not notice the dropped replay run"
    invariant, message = runner.calls[0]
    assert invariant == "batch-replay"
    assert "diverged" in message


def test_replay_checker_clean_without_fault():
    spec = CacheSpec(
        level=1, size_bytes=4096, line_bytes=64, mshrs=10, associativity=8
    )
    array = CacheArray(spec, "t.L1")
    runner = _CapturingRunner()
    checker = CacheReplayChecker(array, runner)
    array._sanitizer = checker

    lines = [i * array.num_sets * array.line_bytes for i in range(array.ways)]
    for line in lines:
        array.fill(line)
    array.touch_batch(
        np.array(lines[3::-1], dtype=np.int64), np.zeros(4, dtype=bool)
    )
    array.flush_batch()

    assert runner.calls == []
    assert checker.checks == 1
