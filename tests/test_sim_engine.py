"""Discrete-event engine semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(10.0, lambda: order.append("b"))
        engine.schedule(5.0, lambda: order.append("a"))
        engine.schedule(20.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        engine = Engine()
        order = []
        for tag in ("first", "second", "third"):
            engine.schedule(1.0, lambda t=tag: order.append(t))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(7.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [7.5]
        assert engine.now == 7.5

    def test_events_scheduled_during_run(self):
        engine = Engine()
        order = []

        def first():
            order.append("first")
            engine.schedule(1.0, lambda: order.append("nested"))

        engine.schedule(0.0, first)
        engine.run()
        assert order == ["first", "nested"]

    def test_schedule_at_absolute(self):
        engine = Engine()
        times = []
        engine.schedule_at(3.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: engine.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            engine.run()

    def test_nan_delay_rejected(self):
        # Regression: `NaN < 0` is False, so a NaN delay used to slip
        # into the heap and break (time, seq) tie-ordering for every
        # event scheduled after it.
        with pytest.raises(SimulationError):
            Engine().schedule(float("nan"), lambda: None)

    def test_nan_absolute_time_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule_at(float("nan"), lambda: None)

    def test_queue_stays_orderable_after_rejected_nan(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(float("nan"), lambda: None)
        order = []
        engine.schedule(2.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.run()
        assert order == ["a", "b"]


class TestRunLimits:
    def test_until_stops_early(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(100.0, lambda: fired.append(2))
        engine.run(until_ns=50.0)
        assert fired == [1]
        assert engine.pending() == 1

    def test_max_events_guard(self):
        engine = Engine()

        def loop():
            engine.schedule(1.0, loop)

        engine.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_events_fired_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_fired == 5
