"""The trajectory recorder's history handling (benchmarks/record_trajectory.py).

Only the cheap persistence layer is tested — ``load_history`` /
``append_point`` — not the measurement functions (those simulate for
seconds and are exercised by the CI benchmark leg).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_MODULE_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "record_trajectory.py"
)


@pytest.fixture(scope="module")
def recorder():
    spec = importlib.util.spec_from_file_location("record_trajectory", _MODULE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_missing_file_starts_fresh(recorder, tmp_path):
    assert recorder.load_history(tmp_path / "absent.json") == []


def test_valid_history_preserved(recorder, tmp_path):
    path = tmp_path / "bench.json"
    history = [{"schema_version": 1, "git_sha": "abc"}]
    path.write_text(json.dumps(history))
    assert recorder.load_history(path) == history


def test_corrupt_json_warns_and_starts_fresh(recorder, tmp_path, capsys):
    path = tmp_path / "bench.json"
    path.write_text("{not json at all")
    assert recorder.load_history(path) == []
    err = capsys.readouterr().err
    assert "warning" in err and "fresh trajectory" in err
    # The damaged original is preserved, not destroyed.
    backup = path.with_suffix(".json.corrupt")
    assert backup.exists() and backup.read_text() == "{not json at all"
    assert not path.exists()


def test_non_list_payload_warns_and_starts_fresh(recorder, tmp_path, capsys):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"oops": "a dict"}))
    assert recorder.load_history(path) == []
    assert "not a JSON list" in capsys.readouterr().err


def test_append_point_accumulates(recorder, tmp_path):
    path = tmp_path / "bench.json"
    recorder.append_point(path, {"schema_version": recorder.SCHEMA_VERSION, "n": 1})
    recorder.append_point(path, {"schema_version": recorder.SCHEMA_VERSION, "n": 2})
    history = json.loads(path.read_text())
    assert [entry["n"] for entry in history] == [1, 2]
    assert all(
        entry["schema_version"] == recorder.SCHEMA_VERSION for entry in history
    )


def test_append_point_recovers_from_corruption(recorder, tmp_path, capsys):
    path = tmp_path / "bench.json"
    path.write_text("\x00\x01 garbage")
    recorder.append_point(path, {"n": 1})
    capsys.readouterr()
    assert json.loads(path.read_text()) == [{"n": 1}]


def test_out_path_is_bench_keyed(recorder):
    assert recorder.out_path("analytic_speedup").name == "BENCH_analytic_speedup.json"
    # The original single-bench location is preserved for old tooling.
    assert recorder.OUT_PATH == recorder.out_path("sim_throughput")


def test_bench_registry_names(recorder):
    assert set(recorder.BENCHES) == {"sim_throughput", "analytic_speedup"}
    assert all(callable(fn) for fn in recorder.BENCHES.values())


def test_record_rejects_unknown_bench(recorder):
    with pytest.raises(SystemExit, match="unknown bench"):
        recorder.record(["no_such_bench"])
