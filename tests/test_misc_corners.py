"""Coverage for smaller corners across the library."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import AddressSpace, partition
from repro.counters.events import CounterEvent, VENDOR_EVENTS
from repro.counters.vendor import _weaker, Visibility
from repro.errors import ConfigurationError
from repro.memory import TabulatedLatencyModel
from repro.sim import Engine, MemoryController
from repro.sim.stats import MemoryStats


class TestPartitionProperties:
    @given(n=st.integers(0, 5000), parts=st.integers(1, 64))
    def test_covers_exactly_once(self, n, parts):
        ranges = partition(n, parts)
        assert len(ranges) == parts
        covered = 0
        prev_end = 0
        for start, end in ranges:
            assert start == prev_end
            assert end >= start
            covered += end - start
            prev_end = end
        assert covered == n

    @given(n=st.integers(1, 5000), parts=st.integers(1, 64))
    def test_balanced_within_one(self, n, parts):
        sizes = [end - start for start, end in partition(n, parts)]
        assert max(sizes) - min(sizes) <= 1


class TestAddressSpaceProperties:
    @given(
        lengths=st.lists(st.integers(1, 1 << 20), min_size=1, max_size=8),
        itemsize=st.sampled_from([4, 8, 16]),
    )
    def test_regions_never_overlap(self, lengths, itemsize):
        space = AddressSpace()
        spans = []
        for i, length in enumerate(lengths):
            name = f"arr{i}"
            space.add(name, length, itemsize)
            spans.append(
                (space.addr(name, 0), space.addr(name, length - 1) + itemsize)
            )
        spans.sort()
        for (lo_a, hi_a), (lo_b, _) in zip(spans, spans[1:]):
            assert hi_a <= lo_b


class TestVendorWeakerMerge:
    def test_weaker_picks_lower_visibility(self):
        assert _weaker(Visibility.YES, Visibility.NO) is Visibility.NO
        assert (
            _weaker(Visibility.LIMITED, Visibility.VERY_LIMITED)
            is Visibility.VERY_LIMITED
        )
        assert _weaker(Visibility.LIMITED, Visibility.LIMITED) is Visibility.LIMITED

    def test_event_caveats_documented(self):
        """The misleading counters carry their caveats from the paper."""
        skl_events = {e.native_name: e for e in VENDOR_EVENTS["intel-skl"]}
        latency = skl_events["MEM_TRANS_RETIRED.LOAD_LATENCY_GT_*"]
        assert "longer than just the memory latency" in latency.caveat
        offcore = skl_events["OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL"]
        assert "writeback" in offcore.caveat.lower()


class TestMemoryControllerUtilizationWindow:
    def test_utilization_decays_after_quiet_period(self):
        engine = Engine()
        model = TabulatedLatencyModel([(0.0, 100.0), (1.0, 200.0)])
        mc = MemoryController(
            engine,
            model,
            peak_bw_bytes=10e9,
            achievable_fraction=1.0,
            line_bytes=64,
            stats=MemoryStats(),
            window_ns=100.0,
        )
        for _ in range(50):
            mc.request(is_write=False, is_prefetch=False, on_complete=lambda: None)
        engine.run()
        busy_util = mc.utilization(engine.now)
        quiet_util = mc.utilization(engine.now + 1000.0)
        assert quiet_util == 0.0
        assert busy_util >= quiet_util

    def test_rejects_bad_parameters(self):
        engine = Engine()
        model = TabulatedLatencyModel([(0.0, 100.0), (1.0, 200.0)])
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            MemoryController(
                engine,
                model,
                peak_bw_bytes=0.0,
                achievable_fraction=1.0,
                line_bytes=64,
                stats=MemoryStats(),
            )
        with pytest.raises(SimulationError):
            MemoryController(
                engine,
                model,
                peak_bw_bytes=1e9,
                achievable_fraction=1.5,
                line_bytes=64,
                stats=MemoryStats(),
            )


class TestCsvRoundTrip:
    @given(
        rows=st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
                    min_size=1,
                    max_size=20,
                ),
                st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_format_then_parse_preserves_measurements(self, rows):
        from repro.io import from_csv

        text = "routine,bandwidth_gbs,prefetch_fraction\n" + "".join(
            f"{name},{bw!r},{pf!r}\n" for name, bw, pf in rows
        )
        parsed = from_csv(text)
        assert len(parsed) == len(rows)
        for measurement, (name, bw, pf) in zip(parsed, rows):
            assert measurement.routine == name
            assert math.isclose(measurement.bandwidth_bytes, bw * 1e9, rel_tol=1e-12)
            assert math.isclose(
                measurement.prefetch_fraction, pf, rel_tol=1e-12, abs_tol=1e-12
            )


class TestCounterEventEnum:
    def test_all_events_have_distinct_values(self):
        values = [e.value for e in CounterEvent]
        assert len(values) == len(set(values))

    def test_vendor_lists_reference_known_events(self):
        for vendor, natives in VENDOR_EVENTS.items():
            for native in natives:
                assert isinstance(native.event, CounterEvent), vendor
