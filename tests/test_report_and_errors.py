"""Report rendering helpers and the exception hierarchy."""

import pytest

from repro import errors
from repro.core import (
    CaseStudyRow,
    ComparisonRow,
    render_case_study_table,
    render_comparison_table,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "ProfileError",
            "ProfileDomainError",
            "CounterError",
            "CounterUnavailableError",
            "SimulationError",
            "TraceError",
            "StationarityError",
            "OptimizationError",
            "ExperimentError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_unknown_machine_carries_candidates(self):
        err = errors.UnknownMachineError("foo", ("skl", "knl"))
        assert err.name == "foo"
        assert "skl" in str(err)

    def test_counter_unavailable_carries_context(self):
        err = errors.CounterUnavailableError("fujitsu", "latency")
        assert err.vendor == "fujitsu"
        assert "fujitsu" in str(err)

    def test_domain_error_is_profile_error(self):
        assert issubclass(errors.ProfileDomainError, errors.ProfileError)


class TestCaseStudyRendering:
    def _row(self, speedup=1.4):
        return CaseStudyRow(
            proc="knl",
            source="+ vect",
            bw_gbs=240.0,
            bw_pct=60.0,
            latency_ns=182.0,
            n_avg=10.66,
            opt_label="2-ht",
            speedup=speedup,
        )

    def test_table_layout(self):
        text = render_case_study_table("Table IV", [self._row()])
        assert "Table IV" in text
        assert "240.0" in text
        assert "2-ht: 1.40x" in text

    def test_terminal_row_dash(self):
        row = self._row(speedup=None)
        assert row.perf_cell() == "-"


class TestComparisonRendering:
    def test_comparison_table(self):
        rows = [
            ComparisonRow("knl/base", 10.23, 10.2, 1.02, 1.03, True),
            ComparisonRow("knl/+ vect", 10.66, 12.9, 1.04, 1.5, False),
        ]
        text = render_comparison_table("cmp", rows)
        assert "agree" in text and "DISAGREE" in text

    def test_n_avg_error(self):
        row = ComparisonRow("x", 10.0, 11.0, None, None, True)
        assert row.n_avg_error == pytest.approx(0.1)

    def test_zero_paper_value(self):
        row = ComparisonRow("x", 0.0, 1.0, None, None, True)
        assert row.n_avg_error == 0.0
