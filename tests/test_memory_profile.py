"""LatencyProfile: the once-per-machine characterization artifact."""

import pytest

from repro.errors import ProfileDomainError, ProfileError
from repro.memory import LatencyProfile, ProfilePoint, model_for_machine


def _simple_profile():
    return LatencyProfile(
        machine_name="skl",
        peak_bw_bytes=128e9,
        points=(
            ProfilePoint(0.0, 80.0),
            ProfilePoint(64e9, 100.0),
            ProfilePoint(111e9, 170.0),
        ),
    )


class TestConstruction:
    def test_points_sorted_on_construction(self):
        profile = LatencyProfile(
            "skl",
            128e9,
            points=(ProfilePoint(64e9, 100.0), ProfilePoint(0.0, 80.0)),
        )
        assert profile.points[0].bandwidth_bytes == 0.0

    def test_rejects_single_point(self):
        with pytest.raises(ProfileError):
            LatencyProfile("skl", 128e9, points=(ProfilePoint(0.0, 80.0),))

    def test_rejects_decreasing_latency(self):
        with pytest.raises(ProfileError):
            LatencyProfile(
                "skl",
                128e9,
                points=(ProfilePoint(0.0, 200.0), ProfilePoint(64e9, 100.0)),
            )

    def test_rejects_duplicate_bandwidth(self):
        with pytest.raises(ProfileError):
            LatencyProfile(
                "skl",
                128e9,
                points=(ProfilePoint(1e9, 80.0), ProfilePoint(1e9, 90.0)),
            )

    def test_point_validation(self):
        with pytest.raises(ProfileError):
            ProfilePoint(-1.0, 100.0)
        with pytest.raises(ProfileError):
            ProfilePoint(1e9, 0.0)


class TestQueries:
    def test_latency_interpolation(self):
        profile = _simple_profile()
        assert profile.latency_at(32e9) == pytest.approx(90.0)

    def test_idle_latency(self):
        assert _simple_profile().idle_latency_ns == pytest.approx(80.0)

    def test_slightly_beyond_domain_is_saturated(self):
        profile = _simple_profile()
        assert profile.latency_at(112e9) == pytest.approx(170.0)

    def test_far_beyond_domain_rejected(self):
        with pytest.raises(ProfileDomainError):
            _simple_profile().latency_at(200e9)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ProfileDomainError):
            _simple_profile().latency_at(-1.0)

    def test_utilization_of(self):
        assert _simple_profile().utilization_of(64e9) == pytest.approx(0.5)


class TestFromModel:
    def test_samples_machine_curve(self, skl):
        profile = LatencyProfile.from_model(
            skl.name, skl.memory.peak_bw_bytes, model_for_machine(skl), samples=32
        )
        assert len(profile.points) == 32
        assert profile.latency_at(106.9e9) == pytest.approx(145, abs=6)

    def test_rejects_too_few_samples(self, skl):
        with pytest.raises(ProfileError):
            LatencyProfile.from_model(
                skl.name, skl.memory.peak_bw_bytes, model_for_machine(skl), samples=1
            )


class TestFromSamples:
    def test_rectifies_measurement_noise(self):
        # Non-monotone raw measurements become a valid running-max curve.
        profile = LatencyProfile.from_samples(
            "skl",
            128e9,
            [(0.0, 80.0), (50e9, 120.0), (60e9, 110.0), (100e9, 160.0)],
        )
        assert profile.latency_at(60e9) == pytest.approx(120.0)

    def test_source_tag(self):
        profile = LatencyProfile.from_samples("skl", 128e9, [(0.0, 80.0), (1e9, 81.0)])
        assert profile.source == "xmem"


class TestPersistence:
    def test_json_roundtrip(self):
        profile = _simple_profile()
        clone = LatencyProfile.from_json(profile.to_json())
        assert clone.machine_name == profile.machine_name
        assert clone.points == profile.points

    def test_save_load(self, tmp_path):
        path = tmp_path / "skl.json"
        profile = _simple_profile()
        profile.save(path)
        assert LatencyProfile.load(path).latency_at(32e9) == pytest.approx(90.0)

    def test_malformed_json_raises(self):
        with pytest.raises(ProfileError):
            LatencyProfile.from_json("{}")
        with pytest.raises(ProfileError):
            LatencyProfile.from_json("not json at all")
