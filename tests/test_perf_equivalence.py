"""Serial, parallel, and cached execution must be bit-identical.

The perf layer (``repro.perf``) is pure plumbing: ``fan_out`` may change
*where* a simulation runs and the cache may change *whether* it runs,
but neither is allowed to change a single observable number.  These
tests pin that contract per machine (SKL, KNL, A64FX) via
``SimStats.fingerprint()``, which hashes every semantic field.
"""

from __future__ import annotations

import pytest

from repro.machines import get_machine
from repro.perf import fan_out
from repro.perf.cache import SimCache, cached_run_trace, get_cache
from repro.sim import SimConfig, run_trace
from repro.xmem.kernels import throughput_trace
from repro.xmem.runner import XMemConfig, characterize_machine

MACHINES = ("skl", "knl", "a64fx")
ACCESSES = 400


@pytest.fixture(autouse=True)
def _fault_free_baseline(monkeypatch):
    """This file asserts exact hit/miss counts: park any ambient
    ``REPRO_FAULTS`` spec (CI fault leg) and restore it afterwards.
    Likewise pin unsanitized mode — sanitized runs bypass the cache by
    contract (docs/SANITIZER.md), which would zero every counter here."""
    import os

    from repro.resilience import configure_faults

    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    ambient = os.environ.get("REPRO_FAULTS")
    configure_faults(None)
    yield
    configure_faults(ambient)


def _case_inputs(machine_name):
    machine = get_machine(machine_name)
    trace = throughput_trace(
        threads=2,
        accesses_per_thread=ACCESSES,
        line_bytes=machine.line_bytes,
        gap_cycles=12.0,
    )
    return trace, SimConfig(machine=machine, sim_cores=2)


def _fingerprint_case(machine_name):
    """Worker for fan_out: simulate one machine's case, return observables."""
    trace, config = _case_inputs(machine_name)
    stats = cached_run_trace(trace, config)
    return stats.fingerprint()


@pytest.fixture(scope="module")
def baselines():
    """Serial, uncached ground truth per machine."""
    return {
        name: run_trace(*_case_inputs(name)).fingerprint() for name in MACHINES
    }


class TestParallelEquivalence:
    def test_serial_fan_out_matches_baseline(self, baselines):
        got = fan_out(_fingerprint_case, MACHINES, jobs=1)
        assert got == [baselines[name] for name in MACHINES]

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_parallel_fan_out_matches_baseline(self, baselines, jobs):
        got = fan_out(_fingerprint_case, MACHINES, jobs=jobs)
        assert got == [baselines[name] for name in MACHINES]


class TestCacheEquivalence:
    @pytest.mark.parametrize("machine_name", MACHINES)
    def test_cache_hit_matches_serial_uncached(
        self, tmp_path, machine_name, baselines
    ):
        trace, config = _case_inputs(machine_name)
        cache = SimCache(tmp_path, enabled=True)
        stored = cached_run_trace(trace, config, cache=cache)
        replayed = cached_run_trace(trace, config, cache=cache)
        assert cache.counters.hits == 1
        assert stored.fingerprint() == baselines[machine_name]
        assert replayed.fingerprint() == baselines[machine_name]

    def test_warm_cache_runs_zero_simulations(self):
        # Against the session-level cache (the one fan_out workers share):
        # after a first pass, a second identical pass must be all hits.
        for name in MACHINES:
            cached_run_trace(*_case_inputs(name))
        before = get_cache().counters.snapshot()
        for name in MACHINES:
            cached_run_trace(*_case_inputs(name))
        delta = get_cache().counters.diff(before)
        assert delta.misses == 0
        assert delta.hits == len(MACHINES)


class TestCharacterizeEquivalence:
    def test_profile_identical_across_worker_counts(self):
        machine = get_machine("skl")
        config = XMemConfig(levels=3, accesses_per_thread=300)
        serial = characterize_machine(machine, config, jobs=1)
        parallel = characterize_machine(machine, config, jobs=2)
        assert serial.points == parallel.points
        assert serial.source == parallel.source
