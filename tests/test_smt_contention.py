"""SMT contention experiment (repro.experiments.smt_contention)."""

import pytest

from repro.experiments import contention_survey, measure_contention
from repro.machines import get_machine
from repro.workloads import get_workload


class TestMeasureContention:
    def test_comd_l1_contention(self):
        result = measure_contention(
            get_workload("comd"), get_machine("skl"), accesses_per_thread=1500
        )
        assert result.l1_miss_inflation > 1.3
        assert result.contended

    def test_isx_is_the_control(self):
        result = measure_contention(
            get_workload("isx"), get_machine("skl"), accesses_per_thread=1500
        )
        assert not result.contended
        assert result.l1_miss_inflation == pytest.approx(1.0, abs=0.1)

    def test_tiled_minighost_l2_contention(self):
        result = measure_contention(
            get_workload("minighost"),
            get_machine("knl"),
            steps=("loop_tiling",),
            accesses_per_thread=2500,
        )
        assert result.dram_demand_inflation > 1.3

    def test_render_flags_contention(self):
        result = measure_contention(
            get_workload("comd"), get_machine("skl"), accesses_per_thread=1200
        )
        assert "contended" in result.render()


class TestSurvey:
    def test_survey_shape(self):
        results = contention_survey(accesses_per_thread=1500)
        names = [r.workload for r in results]
        assert names == ["comd", "minighost", "isx"]
        assert results[0].contended and results[1].contended
        assert not results[2].contended
