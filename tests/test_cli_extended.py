"""CLI: ingest, headroom, recipe-score, reproduce-all paths."""

import pytest

from repro.cli import main


class TestIngest:
    def test_csv_ingestion(self, capsys, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("count_local_keys,106.9,0.05\n")
        assert main(["ingest", "--machine", "skl", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "count_local_keys" in out
        assert "STOP" in out

    def test_perf_ingestion(self, capsys, tmp_path):
        path = tmp_path / "perf.txt"
        path.write_text(
            "  1,000,000,000  OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL\n"
        )
        code = main(
            [
                "ingest",
                "--machine",
                "skl",
                "--file",
                str(path),
                "--format",
                "perf",
                "--seconds",
                "1.0",
                "--routine",
                "demo",
            ]
        )
        assert code == 0
        assert "demo" in capsys.readouterr().out

    def test_perf_without_seconds_errors(self, capsys, tmp_path):
        path = tmp_path / "perf.txt"
        path.write_text("1 X\n")
        code = main(
            ["ingest", "--machine", "skl", "--file", str(path), "--format", "perf"]
        )
        assert code == 2

    def test_bad_measurement_reports_error(self, capsys, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("# nothing here\n")
        code = main(["ingest", "--machine", "skl", "--file", str(path)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestHeadroom:
    def test_map_rendered(self, capsys):
        assert main(["headroom", "--machine", "knl"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "streaming" in out

    def test_concept_machines_available(self, capsys):
        assert main(["headroom", "--machine", "hbm3"]) == 0


class TestRecipeScore:
    def test_score_is_clean(self, capsys):
        assert main(["recipe-score"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out


class TestReproduceAll:
    def test_all_tables(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        for table in ("IV", "V", "VI", "VII", "VIII", "IX"):
            assert f"Table {table} reproduction" in out
        assert "all rows within tolerance" in out


class TestLenientIngest:
    def test_bad_rows_survive_with_quality_report(self, capsys, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text(
            "count_local_keys,106.9,0.05\n"
            "broken_row,not_a_number,0.5\n"
        )
        code = main(
            ["ingest", "--machine", "skl", "--file", str(path), "--lenient"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "data quality" in out
        assert "bad-cell" in out
        assert "error budget widened" in out
        assert "count_local_keys" in out

    def test_strict_mode_still_dies_on_bad_row(self, capsys, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("ok,50.0,0.5\nbroken,not_a_number,0.5\n")
        code = main(["ingest", "--machine", "skl", "--file", str(path)])
        assert code == 2
        assert "line 2" in capsys.readouterr().err

    def test_clean_input_prints_no_quality_block(self, capsys, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("count_local_keys,106.9,0.05\n")
        code = main(
            ["ingest", "--machine", "skl", "--file", str(path), "--lenient"]
        )
        assert code == 0
        assert "data quality" not in capsys.readouterr().out


class TestCharacterizeResume:
    ARGS = ["characterize", "--machine", "skl", "--levels", "3"]

    def test_checkpoint_then_resume_replays(self, capsys, tmp_path):
        ck = tmp_path / "ck.jsonl"
        assert main(self.ARGS + ["--checkpoint", str(ck)]) == 0
        first = capsys.readouterr().out
        assert ck.exists()
        code = main(self.ARGS + ["--checkpoint", str(ck), "--resume"])
        resumed = capsys.readouterr().out
        assert code == 0
        assert "resuming from checkpoint" in resumed
        assert "3 level(s) already done" in resumed
        # The replayed profile must match the fresh one line for line
        # (wall time and cache stats legitimately differ).
        profile = first[first.index("latency profile") : first.index("characterized in")]
        assert profile in resumed

    def test_no_resume_clears_stale_checkpoint(self, capsys, tmp_path):
        ck = tmp_path / "ck.jsonl"
        assert main(self.ARGS + ["--checkpoint", str(ck)]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--checkpoint", str(ck)]) == 0
        assert "cleared stale checkpoint" in capsys.readouterr().out

    def test_resume_without_checkpoint_is_an_error(self, capsys):
        code = main(self.ARGS + ["--resume"])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_retry_flags_mirror_into_env(self, monkeypatch):
        import os

        # setenv (not delenv) so teardown restores the ORIGINAL state —
        # delenv on an absent var registers nothing to undo, and the
        # values main() writes would leak into later tests.
        monkeypatch.setenv("REPRO_RETRIES", "")
        monkeypatch.setenv("REPRO_TIMEOUT_S", "")
        code = main(self.ARGS + ["--retries", "2", "--timeout-s", "30"])
        assert code == 0
        assert os.environ["REPRO_RETRIES"] == "2"
        assert os.environ["REPRO_TIMEOUT_S"] == "30.0"
