"""CLI: ingest, headroom, recipe-score, reproduce-all paths."""

import pytest

from repro.cli import main


class TestIngest:
    def test_csv_ingestion(self, capsys, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("count_local_keys,106.9,0.05\n")
        assert main(["ingest", "--machine", "skl", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "count_local_keys" in out
        assert "STOP" in out

    def test_perf_ingestion(self, capsys, tmp_path):
        path = tmp_path / "perf.txt"
        path.write_text(
            "  1,000,000,000  OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL\n"
        )
        code = main(
            [
                "ingest",
                "--machine",
                "skl",
                "--file",
                str(path),
                "--format",
                "perf",
                "--seconds",
                "1.0",
                "--routine",
                "demo",
            ]
        )
        assert code == 0
        assert "demo" in capsys.readouterr().out

    def test_perf_without_seconds_errors(self, capsys, tmp_path):
        path = tmp_path / "perf.txt"
        path.write_text("1 X\n")
        code = main(
            ["ingest", "--machine", "skl", "--file", str(path), "--format", "perf"]
        )
        assert code == 2

    def test_bad_measurement_reports_error(self, capsys, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("# nothing here\n")
        code = main(["ingest", "--machine", "skl", "--file", str(path)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestHeadroom:
    def test_map_rendered(self, capsys):
        assert main(["headroom", "--machine", "knl"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "streaming" in out

    def test_concept_machines_available(self, capsys):
        assert main(["headroom", "--machine", "hbm3"]) == 0


class TestRecipeScore:
    def test_score_is_clean(self, capsys):
        assert main(["recipe-score"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out


class TestReproduceAll:
    def test_all_tables(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        for table in ("IV", "V", "VI", "VII", "VIII", "IX"):
            assert f"Table {table} reproduction" in out
        assert "all rows within tolerance" in out
