"""Cross-validation experiment (trace generators vs descriptors)."""

import pytest

from repro.experiments import (
    CrossValidationRow,
    cross_validate,
    render_cross_validation,
)
from repro.machines import get_machine
from repro.workloads import get_workload


class TestCrossValidation:
    @pytest.fixture(scope="class")
    def rows(self):
        # One machine here for speed; the bench covers all 18 pairs.
        return cross_validate(
            machines=[get_machine("skl")], accesses_per_thread=1500
        )

    def test_all_skl_rows_ok(self, rows):
        bad = [r.workload for r in rows if not r.ok]
        assert not bad

    def test_isx_classified_random(self, rows):
        isx = next(r for r in rows if r.workload == "isx")
        assert isx.classified_binding == 1
        assert isx.measured_prefetch_fraction < 0.2

    def test_minighost_classified_streaming(self, rows):
        mg = next(r for r in rows if r.workload == "minighost")
        assert mg.classified_binding == 2
        assert mg.l2_occupancy > mg.l1_occupancy

    def test_comd_binding_immaterial(self, rows):
        comd = next(r for r in rows if r.workload == "comd")
        assert comd.binding_immaterial

    def test_render(self, rows):
        text = render_cross_validation(rows)
        assert "verdict" in text
        assert "ok" in text

    def test_single_workload_filter(self):
        rows = cross_validate(
            machines=[get_machine("knl")],
            workloads=[get_workload("isx")],
            accesses_per_thread=800,
        )
        assert len(rows) == 1
        assert rows[0].machine == "knl"
