"""Cache garbage collection: ``gc_cache`` and ``repro cache gc``.

The gc contract (docs in :mod:`repro.perf.cache`): entries are evicted
oldest-first, uniformly across the sim store and every payload-kind
directory; ``--max-age`` removes entries older than the horizon,
``--max-bytes`` then trims the oldest survivors until the footprint
fits; quarantined ``.corrupt`` files are forensic artifacts and are
never deleted; emptied shard directories are pruned.
"""

import os

import pytest

from repro.cli import _parse_age, _parse_size, main
from repro.perf.cache import SimCache, collect_stats, configure_cache, gc_cache


def _plant(cache_dir, kind, digest, *, mtime, body=b"x" * 50):
    """Write one fake cache entry with a controlled modification time."""
    if kind == "sim":
        shard = cache_dir / digest[:2]
    else:
        shard = cache_dir / kind / digest[:2]
    shard.mkdir(parents=True, exist_ok=True)
    path = shard / f"{digest}.json"
    path.write_bytes(body)
    os.utime(path, (mtime, mtime))
    return path


@pytest.fixture
def planted(tmp_path):
    """A cache with five entries of known ages across two stores.

    Ages (seconds before ``NOW``): sim aa..=500, sim bb..=400,
    queueing cc..=300, sim dd..=200, queueing ee..=100.  Each entry is
    50 bytes, so the total footprint is 250 bytes.
    """
    cache = SimCache(tmp_path, enabled=True)
    now = 1_000_000.0
    paths = {
        "aa": _plant(tmp_path, "sim", "aa11", mtime=now - 500),
        "bb": _plant(tmp_path, "sim", "bb22", mtime=now - 400),
        "cc": _plant(tmp_path, "queueing", "cc33", mtime=now - 300),
        "dd": _plant(tmp_path, "sim", "dd44", mtime=now - 200),
        "ee": _plant(tmp_path, "queueing", "ee55", mtime=now - 100),
    }
    return cache, now, paths


class TestGcCache:
    def test_no_limits_removes_nothing(self, planted):
        cache, now, paths = planted
        result = gc_cache(cache, now=now)
        assert result.removed_entries == 0
        assert result.kept_entries == 5
        assert result.kept_bytes == 250
        assert all(p.exists() for p in paths.values())

    def test_max_age_evicts_across_kind_dirs(self, planted):
        cache, now, paths = planted
        result = gc_cache(cache, max_age_s=250.0, now=now)
        assert result.removed_entries == 3  # aa, bb, and queueing cc
        assert result.removed_bytes == 150
        assert not paths["aa"].exists() and not paths["cc"].exists()
        assert paths["dd"].exists() and paths["ee"].exists()

    def test_max_bytes_evicts_oldest_first(self, planted):
        cache, now, paths = planted
        result = gc_cache(cache, max_bytes=120, now=now)
        # 250 bytes planted; dropping the three oldest reaches 100 <= 120.
        assert result.removed_entries == 3
        assert result.kept_bytes == 100
        assert not paths["aa"].exists()
        assert not paths["bb"].exists()
        assert not paths["cc"].exists()
        assert paths["dd"].exists() and paths["ee"].exists()

    def test_limits_compose(self, planted):
        cache, now, paths = planted
        # Age alone would keep 4 x 50 = 200 bytes; the byte budget then
        # trims the oldest survivors too.
        result = gc_cache(cache, max_age_s=450.0, max_bytes=100, now=now)
        assert result.removed_entries == 3
        assert paths["dd"].exists() and paths["ee"].exists()

    def test_corrupt_quarantine_is_preserved(self, tmp_path):
        cache = SimCache(tmp_path, enabled=True)
        now = 1_000_000.0
        _plant(tmp_path, "sim", "aa11", mtime=now - 500)
        corrupt = tmp_path / "aa" / "aa11.json.corrupt"
        corrupt.write_bytes(b"forensics")
        os.utime(corrupt, (now - 900, now - 900))
        result = gc_cache(cache, max_age_s=10.0, now=now)
        assert result.removed_entries == 1
        assert corrupt.exists()
        # The shard still holds the quarantine file, so it survives too.
        assert corrupt.parent.is_dir()

    def test_emptied_shards_are_pruned(self, planted):
        cache, now, paths = planted
        gc_cache(cache, max_age_s=10.0, now=now)
        for path in paths.values():
            assert not path.parent.exists()
        # Stats over the emptied cache still work.
        stats = collect_stats(cache)
        assert stats.total_entries == 0

    def test_result_matches_collect_stats(self, planted):
        cache, now, _ = planted
        result = gc_cache(cache, max_bytes=120, now=now)
        stats = collect_stats(cache)
        assert stats.total_entries == result.kept_entries
        assert stats.total_bytes == result.kept_bytes


class TestParseHelpers:
    @pytest.mark.parametrize(
        "text,expected",
        [("512", 512), ("4K", 4096), ("2M", 2 << 20), ("1G", 1 << 30),
         ("1.5K", 1536), ("0", 0)],
    )
    def test_parse_size(self, text, expected):
        assert _parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "12Q", "abc", "-1"])
    def test_parse_size_rejects(self, bad):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_size(bad)

    @pytest.mark.parametrize(
        "text,expected",
        [("90", 90.0), ("45m", 2700.0), ("12h", 43200.0), ("30d", 2_592_000.0),
         ("2w", 1_209_600.0)],
    )
    def test_parse_age(self, text, expected):
        assert _parse_age(text) == expected

    @pytest.mark.parametrize("bad", ["", "1y", "soon", "-5m"])
    def test_parse_age_rejects(self, bad):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_age(bad)


class TestCacheGcCli:
    @pytest.fixture(autouse=True)
    def _scoped_cache(self, tmp_path):
        configure_cache(cache_dir=tmp_path, enabled=True)
        yield tmp_path
        configure_cache(enabled=True)

    def test_requires_a_limit(self, capsys):
        assert main(["cache", "gc"]) == 2
        assert "--max-bytes and/or --max-age" in capsys.readouterr().err

    def test_evicts_and_reports(self, _scoped_cache, capsys):
        tmp_path = _scoped_cache
        now = 1_000_000.0
        _plant(tmp_path, "sim", "aa11", mtime=now - 500)
        _plant(tmp_path, "queueing", "bb22", mtime=now - 100)
        assert main(["cache", "gc", "--max-bytes", "60"]) == 0
        out = capsys.readouterr().out
        assert "evicted 1 entr(ies), 50 bytes" in out
        assert "kept 1 entr(ies), 50 bytes" in out

    def test_suffixed_arguments_parse(self, capsys):
        assert main(["cache", "gc", "--max-bytes", "1G", "--max-age", "30d"]) == 0
        assert "evicted 0 entr(ies)" in capsys.readouterr().out

    def test_disabled_cache_is_a_noop(self, capsys):
        configure_cache(enabled=False)
        assert main(["cache", "gc", "--max-age", "1s"]) == 0
        assert "disabled" in capsys.readouterr().out
