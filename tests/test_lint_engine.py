"""Engine-level tests for reprolint: registry, noqa, runner, reporters."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    LintError,
    LintResult,
    LintRunner,
    Rule,
    Severity,
    SourceFile,
    Violation,
    all_rules,
    get_rule,
    iter_python_files,
    render_json,
    render_text,
    to_json_doc,
)
from repro.analysis.core import _parse_noqa


def _violation(line=1, rule_id="TST001", severity=Severity.ERROR, path="x.py"):
    return Violation(
        path=path,
        line=line,
        col=0,
        rule_id=rule_id,
        message="synthetic finding",
        severity=severity,
    )


class _OneShotRule(Rule):
    """Emits one finding on every line containing 'BAD'."""

    prefix = "TST"
    name = "test-rule"
    description = "synthetic rule for engine tests"

    def check_file(self, source):
        """Flag each line containing the marker token."""
        return [
            _violation(line=i, path=str(source.path))
            for i, text in enumerate(source.text.splitlines(), start=1)
            if "BAD" in text
        ]


class TestNoqaParsing:
    def test_blanket_and_specific(self):
        text = (
            "a = 1  # repro: noqa\n"
            "b = 2  # repro: noqa[DET001]\n"
            "c = 3  # repro: noqa[DET001, UNIT001]\n"
            "d = 4\n"
        )
        noqa = _parse_noqa(text)
        assert noqa[1] == {"*"}
        assert noqa[2] == {"DET001"}
        assert noqa[3] == {"DET001", "UNIT001"}
        assert 4 not in noqa

    def test_case_insensitive_marker(self):
        noqa = _parse_noqa("x = 1  # REPRO: NOQA[det001]\n")
        assert noqa[1] == {"DET001"}

    def test_string_literal_does_not_suppress(self):
        # The marker inside a string is not a comment token.
        noqa = _parse_noqa('msg = "# repro: noqa[DET001]"\n')
        assert noqa == {}

    def test_plain_noqa_not_honored(self):
        assert _parse_noqa("x = 1  # noqa\n") == {}

    def test_tokenize_failure_returns_empty(self):
        # EOF inside an open bracket: tokenizer raises mid-stream and the
        # parse falls back to "no suppressions" (even for comments already
        # seen), leaving the syntax error to SourceFile.tree.
        assert _parse_noqa("x = (  # repro: noqa\n") == {}


class TestSourceFile:
    def test_tree_and_noqa(self, tmp_path):
        p = tmp_path / "m.py"
        p.write_text("x = 1  # repro: noqa[TST001]\n")
        src = SourceFile(p)
        assert src.tree is not None
        assert src.parse_error is None
        assert src.is_suppressed(1, "TST001")
        assert src.is_suppressed(1, "tst001")  # ids are case-insensitive
        assert not src.is_suppressed(1, "TST002")
        assert not src.is_suppressed(2, "TST001")

    def test_syntax_error_file(self):
        src = SourceFile(Path("bad.py"), text="def f(:\n")
        assert src.tree is None
        assert src.parse_error is not None

    def test_unreadable_path_raises(self, tmp_path):
        with pytest.raises(LintError):
            SourceFile(tmp_path / "missing.py")


class TestRegistry:
    def test_all_rules_has_builtin_prefixes(self):
        prefixes = {rule.prefix for rule in all_rules()}
        assert {"DET", "UNIT", "KEY", "SLOT", "SPEC"} <= prefixes

    def test_get_rule_case_insensitive(self):
        assert get_rule("det").prefix == "DET"

    def test_get_rule_unknown(self):
        with pytest.raises(LintError, match="unknown rule"):
            get_rule("NOPE")


class TestIterPythonFiles:
    def test_walk_dedup_and_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("a = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("a = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        found = list(
            iter_python_files([tmp_path, tmp_path / "pkg" / "a.py"])
        )
        assert [p.name for p in found] == ["a.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError, match="no such path"):
            list(iter_python_files([tmp_path / "ghost"]))


class TestLintRunner:
    def test_findings_and_exit_code(self):
        src = SourceFile(Path("f.py"), text="ok = 1\nBAD = 2\n")
        result = LintRunner([_OneShotRule()]).run_sources([src])
        assert [v.line for v in result.violations] == [2]
        assert result.exit_code == 1
        assert result.files_checked == 1
        assert result.rules_run == ("TST",)

    def test_suppression_honored(self):
        src = SourceFile(Path("f.py"), text="BAD = 1  # repro: noqa[TST001]\n")
        result = LintRunner([_OneShotRule()]).run_sources([src])
        assert result.violations == []
        assert result.exit_code == 0

    def test_blanket_suppression(self):
        src = SourceFile(Path("f.py"), text="BAD = 1  # repro: noqa\n")
        result = LintRunner([_OneShotRule()]).run_sources([src])
        assert result.violations == []

    def test_syntax_error_reported(self):
        src = SourceFile(Path("broken.py"), text="def f(:\n")
        result = LintRunner([_OneShotRule()]).run_sources([src])
        assert [v.rule_id for v in result.violations] == ["SYNTAX"]
        assert result.exit_code == 1

    def test_warning_only_exits_zero(self):
        class _WarnRule(_OneShotRule):
            default_severity = Severity.WARNING

            def check_file(self, source):
                """Emit one warning-severity finding."""
                return [_violation(severity=Severity.WARNING, path=str(source.path))]

        src = SourceFile(Path("f.py"), text="x = 1\n")
        result = LintRunner([_WarnRule()]).run_sources([src])
        assert len(result.violations) == 1
        assert result.errors == []
        assert result.exit_code == 0

    def test_report_order_is_sorted(self):
        src_b = SourceFile(Path("b.py"), text="BAD\nBAD\n")
        src_a = SourceFile(Path("a.py"), text="BAD\n")
        result = LintRunner([_OneShotRule()]).run_sources([src_b, src_a])
        assert [(v.path, v.line) for v in result.violations] == [
            ("a.py", 1),
            ("b.py", 1),
            ("b.py", 2),
        ]


class TestReporters:
    def _result(self, violations):
        return LintResult(
            violations=violations, files_checked=3, rules_run=("TST",)
        )

    def test_text_with_findings(self):
        text = render_text(self._result([_violation(line=7)]))
        assert "x.py:7:0: TST001 [error] synthetic finding" in text
        assert "1 error(s), 0 warning(s) in 3 file(s) [TST001 x1]" in text

    def test_text_clean(self):
        text = render_text(self._result([]))
        assert text.startswith("clean: 3 file(s)")

    def test_json_document(self):
        doc = to_json_doc(
            self._result([_violation(severity=Severity.WARNING)])
        )
        assert doc["files_checked"] == 3
        assert doc["error_count"] == 0
        assert doc["violation_count"] == 1
        assert doc["violations"][0]["severity"] == "warning"
        # render_json must be valid JSON of the same document.
        assert json.loads(render_json(self._result([]))) == to_json_doc(
            self._result([])
        )
