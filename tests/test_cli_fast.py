"""CLI surface for the analytic --fast mode and the cache introspection.

Complements test_cli.py: exercises ``characterize --fast``,
``analyze --fast``, ``advisor``, ``crossval-analytic``, ``cache stats``,
and the ``-v`` solver diagnostics end to end through ``main``.
"""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _sanitize_off(monkeypatch):
    """Run the --fast assertions with sanitize mode off.

    Under ``REPRO_SANITIZE=1`` (e.g. the CI sanitize job) ``--fast``
    correctly declines and runs the instrumented simulator, which would
    fail every analytic-path assertion here.  The decline behavior
    itself is covered by ``test_fast_declines_under_sanitize``, which
    re-sets the variable explicitly.
    """
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)


class TestCharacterizeFast:
    def test_fast_profile_and_save(self, capsys, tmp_path):
        out_path = tmp_path / "fast.json"
        code = main(
            [
                "characterize",
                "--machine",
                "skl",
                "--levels",
                "4",
                "--fast",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "source=analytic" in out
        assert "analytic fast path" in out and "cached probe run(s)" in out
        doc = json.loads(out_path.read_text())
        assert doc["machine"] == "skl"
        assert doc["source"] == "analytic"

    def test_fast_declines_under_sanitize(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        code = main(
            ["characterize", "--machine", "skl", "--levels", "3", "--fast"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The decline is a stated reason, then the real sweep runs.
        assert "--fast declined" in out
        assert "instrumented simulator" in out
        assert "characterized in" in out


class TestAnalyzeFast:
    def test_widened_error_budget_reported(self, capsys):
        code = main(
            [
                "analyze",
                "--machine",
                "knl",
                "--bandwidth",
                "233",
                "--pattern",
                "random",
                "--fast",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "error budget widened" in out
        assert "docs/QUEUEING.md" in out


class TestAdvisor:
    def test_fast_route_is_reported(self, capsys):
        code = main(
            ["-v", "advisor", "--machine", "skl", "--workload", "isx", "--fast"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "solved analytically (closed-form fast path)" in out
        assert "solver: closed form" in out

    def test_slow_route_without_fast(self, capsys):
        code = main(
            ["-v", "advisor", "--machine", "skl", "--workload", "isx"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "solved analytically" not in out
        assert "iteration(s), final residual" in out

    def test_diagnostics_silent_without_verbose(self, capsys):
        assert main(["advisor", "--machine", "skl", "--workload", "isx"]) == 0
        assert "solver:" not in capsys.readouterr().out


class TestCrossValAnalytic:
    def test_single_machine_table_and_json(self, capsys, tmp_path):
        json_path = tmp_path / "crossval.json"
        code = main(
            ["crossval-analytic", "--machine", "skl", "--json", str(json_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worst bw err" in out
        assert "fallback: prefetch-dominated" in out  # minighost on skl
        doc = json.loads(json_path.read_text())
        assert len(doc["rows"]) == 6  # all paper workloads run on skl
        assert all(row["within_bound"] for row in doc["rows"])


class TestCacheStats:
    def test_stats_lists_stores(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "cache directory:" in out
        assert "total" in out
        assert "lifetime tallies:" in out

    def test_stats_with_cache_disabled(self, capsys, monkeypatch):
        from repro.perf.cache import configure_cache

        configure_cache(enabled=False)
        try:
            assert main(["cache", "stats"]) == 0
            assert "sim cache: disabled" in capsys.readouterr().out
        finally:
            monkeypatch.delenv("REPRO_CACHE", raising=False)
            configure_cache(enabled=True)


class TestParserFast:
    def test_fast_flag_rejected_where_unsupported(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure2", "--fast"])

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_crossval_machine_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crossval-analytic", "--machine", "epyc"])
