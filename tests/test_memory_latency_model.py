"""Loaded-latency models: tabulated curves and the queueing form."""

import pytest

from repro.errors import ProfileDomainError, ProfileError
from repro.machines import (
    A64FX_LATENCY_CALIBRATION,
    KNL_LATENCY_CALIBRATION,
    SKL_LATENCY_CALIBRATION,
)
from repro.memory import QueueingLatencyModel, TabulatedLatencyModel, model_for_machine


class TestTabulatedModel:
    def test_interpolates_between_points(self):
        model = TabulatedLatencyModel([(0.0, 100.0), (1.0, 200.0)])
        assert model.latency_ns(0.5) == pytest.approx(150.0)

    def test_clamps_at_calibrated_ends(self):
        model = TabulatedLatencyModel([(0.1, 100.0), (0.9, 200.0)])
        assert model.latency_ns(0.0) == pytest.approx(100.0)
        assert model.latency_ns(1.0) == pytest.approx(200.0)

    def test_idle_and_saturated(self):
        model = TabulatedLatencyModel(SKL_LATENCY_CALIBRATION)
        assert model.idle_latency_ns == pytest.approx(80.0)
        assert model.saturated_latency_ns == pytest.approx(185.0)

    def test_slight_overshoot_clamped(self):
        model = TabulatedLatencyModel([(0.0, 100.0), (1.0, 200.0)])
        assert model.latency_ns(1.04) == pytest.approx(200.0)

    def test_far_overshoot_rejected(self):
        model = TabulatedLatencyModel([(0.0, 100.0), (1.0, 200.0)])
        with pytest.raises(ProfileDomainError):
            model.latency_ns(1.5)

    def test_negative_utilization_rejected(self):
        model = TabulatedLatencyModel([(0.0, 100.0), (1.0, 200.0)])
        with pytest.raises(ProfileDomainError):
            model.latency_ns(-0.1)

    def test_rejects_single_point(self):
        with pytest.raises(ProfileError):
            TabulatedLatencyModel([(0.0, 100.0)])

    def test_rejects_decreasing_latency(self):
        with pytest.raises(ProfileError):
            TabulatedLatencyModel([(0.0, 200.0), (1.0, 100.0)])

    def test_rejects_duplicate_utilization(self):
        with pytest.raises(ProfileError):
            TabulatedLatencyModel([(0.5, 100.0), (0.5, 120.0), (1.0, 150.0)])

    @pytest.mark.parametrize(
        "calibration",
        [SKL_LATENCY_CALIBRATION, KNL_LATENCY_CALIBRATION, A64FX_LATENCY_CALIBRATION],
        ids=["skl", "knl", "a64fx"],
    )
    def test_paper_calibrations_are_valid_curves(self, calibration):
        model = TabulatedLatencyModel(calibration)
        previous = 0.0
        for u in [i / 50 for i in range(51)]:
            lat = model.latency_ns(u)
            assert lat >= previous  # monotone under load
            previous = lat


class TestPaperLatencyPoints:
    """Spot-check the fitted curves against latencies quoted in tables."""

    def test_skl_isx_point(self, skl):
        model = model_for_machine(skl)
        # ISx base: 106.9 GB/s (84%) -> 145 ns (Table IV).
        assert model.latency_ns(106.9 / 128) == pytest.approx(145, abs=5)

    def test_skl_minighost_point(self, skl):
        model = model_for_machine(skl)
        # MiniGhost base: 92.93 GB/s (73%) -> 117 ns (Table VIII).
        assert model.latency_ns(92.93 / 128) == pytest.approx(117, abs=4)

    def test_knl_optimized_isx_point(self, knl):
        model = model_for_machine(knl)
        # ISx optimized: 344 GB/s (86%) -> 238 ns (Table IV).
        assert model.latency_ns(344 / 400) == pytest.approx(238, abs=6)

    def test_a64fx_prefetched_isx_point(self, a64fx):
        model = model_for_machine(a64fx)
        # ISx +l2-pref: 788 GB/s (77%) -> 280 ns (Table IV).
        assert model.latency_ns(788 / 1024) == pytest.approx(280, abs=8)

    def test_loaded_latency_can_be_2x_idle(self, a64fx):
        # Paper III-B: loaded latency "can be 2x or more than the idle
        # latency at peak bandwidth utilization".
        model = model_for_machine(a64fx)
        assert model.latency_ns(1.0) >= 2.0 * model.idle_latency_ns


class TestQueueingModel:
    def test_idle_at_zero_load(self):
        model = QueueingLatencyModel(idle_ns=100.0)
        assert model.latency_ns(0.0) == pytest.approx(100.0)

    def test_monotone(self):
        model = QueueingLatencyModel(idle_ns=100.0)
        lats = [model.latency_ns(u / 20) for u in range(21)]
        assert lats == sorted(lats)

    def test_finite_at_saturation(self):
        model = QueueingLatencyModel(idle_ns=100.0)
        assert model.latency_ns(1.0) < 1e6

    def test_rejects_bad_cap(self):
        with pytest.raises(ProfileError):
            QueueingLatencyModel(idle_ns=100.0, cap=1.0)

    def test_rejects_negative_params(self):
        with pytest.raises(ProfileError):
            QueueingLatencyModel(idle_ns=100.0, alpha=-0.1)

    def test_model_for_machine_without_calibration(self, skl):
        import dataclasses

        bare = dataclasses.replace(skl, latency_calibration=())
        model = model_for_machine(bare)
        assert model.idle_latency_ns == pytest.approx(skl.memory.idle_latency_ns)
