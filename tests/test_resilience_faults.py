"""Fault injection: spec grammar, deterministic firing, site helpers, backoff."""

from __future__ import annotations

import math
import os

import pytest

from repro.errors import ConfigurationError, FaultInjected
from repro.resilience import (
    FAULT_KINDS,
    FaultInjector,
    FaultRule,
    RetryPolicy,
    backoff_delay,
    configure_faults,
    get_injector,
    parse_fault_spec,
)
from repro.resilience.faults import WORKER_KILL_EXIT_CODE


@pytest.fixture(autouse=True)
def _disarm():
    """Inert injector for each test; ambient spec restored afterwards.

    Restoring (rather than popping) an ambient ``REPRO_FAULTS`` keeps a
    CI fault-injection leg's spec alive for the rest of the suite.
    """
    ambient = os.environ.get("REPRO_FAULTS")
    configure_faults(None)
    yield
    configure_faults(ambient)


class TestParseFaultSpec:
    def test_defaults(self):
        rules = parse_fault_spec("cache_corrupt")
        assert rules["cache_corrupt"] == FaultRule(
            kind="cache_corrupt", p=1.0, seed=0, params={}
        )

    def test_params_parsed(self):
        rules = parse_fault_spec("task_hang:p=0.5,seed=3,s=0.01")
        rule = rules["task_hang"]
        assert rule.p == 0.5
        assert rule.seed == 3
        assert rule.params == {"s": 0.01}

    def test_multiple_entries(self):
        spec = "worker_kill:p=0.05,seed=7;cache_corrupt:p=0.1,seed=7"
        rules = parse_fault_spec(spec)
        assert set(rules) == {"worker_kill", "cache_corrupt"}

    def test_empty_entries_skipped(self):
        assert parse_fault_spec("") == {}
        assert parse_fault_spec(";;") == {}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            parse_fault_spec("disk_melt:p=1")

    def test_param_without_value_rejected(self):
        with pytest.raises(ConfigurationError, match="name=value"):
            parse_fault_spec("worker_kill:p")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ConfigurationError, match="numeric"):
            parse_fault_spec("worker_kill:p=often")

    def test_non_finite_value_rejected(self):
        with pytest.raises(ConfigurationError, match="finite"):
            parse_fault_spec("worker_kill:p=nan")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match=r"\[0,1\]"):
            parse_fault_spec("worker_kill:p=1.5")

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            parse_fault_spec("worker_kill:p=0.1;worker_kill:p=0.2")

    def test_every_known_kind_accepted(self):
        for kind in FAULT_KINDS:
            assert kind in parse_fault_spec(f"{kind}:p=0.5")


class TestFaultRuleFiring:
    def test_p_zero_never_fires(self):
        rule = FaultRule(kind="worker_kill", p=0.0)
        assert not any(rule.fires(f"k{i}") for i in range(100))

    def test_p_one_always_fires(self):
        rule = FaultRule(kind="worker_kill", p=1.0)
        assert all(rule.fires(f"k{i}") for i in range(100))

    def test_firing_is_deterministic_per_key(self):
        rule = FaultRule(kind="cache_corrupt", p=0.3, seed=7)
        first = [rule.fires(f"site{i}") for i in range(500)]
        second = [rule.fires(f"site{i}") for i in range(500)]
        assert first == second

    def test_firing_rate_tracks_probability(self):
        rule = FaultRule(kind="cache_corrupt", p=0.3, seed=7)
        rate = sum(rule.fires(f"site{i}") for i in range(4000)) / 4000
        assert 0.25 < rate < 0.35

    def test_seed_changes_the_pattern(self):
        a = FaultRule(kind="counter_drop", p=0.5, seed=0)
        b = FaultRule(kind="counter_drop", p=0.5, seed=1)
        keys = [f"k{i}" for i in range(200)]
        assert [a.fires(k) for k in keys] != [b.fires(k) for k in keys]


class TestInjectorSites:
    def test_inert_injector_is_a_no_op(self, tmp_path):
        injector = FaultInjector()
        assert not injector.active
        injector.maybe_raise("cache_corrupt", "k")  # must not raise
        path = tmp_path / "f.bin"
        path.write_bytes(b"x" * 64)
        assert injector.maybe_corrupt_file("cache_corrupt", "k", path) is False
        assert path.read_bytes() == b"x" * 64
        assert not injector.drops_sample("k")
        assert not injector.nans_sample("k")

    def test_maybe_raise_fires(self):
        injector = FaultInjector(parse_fault_spec("trace_corrupt:p=1"))
        with pytest.raises(FaultInjected) as info:
            injector.maybe_raise("trace_corrupt", "site")
        assert "trace_corrupt" in str(info.value)
        assert "site" in str(info.value)

    def test_corrupt_damages_in_place(self, tmp_path):
        injector = FaultInjector(parse_fault_spec("cache_corrupt:p=1"))
        path = tmp_path / "entry.json"
        original = bytes(range(200))
        path.write_bytes(original)
        assert injector.maybe_corrupt_file("cache_corrupt", "dig", path)
        damaged = path.read_bytes()
        assert len(damaged) == len(original)
        assert damaged != original

    def test_truncate_halves_the_file(self, tmp_path):
        injector = FaultInjector(parse_fault_spec("cache_truncate:p=1"))
        path = tmp_path / "entry.json"
        path.write_bytes(b"y" * 100)
        assert injector.maybe_corrupt_file("cache_truncate", "dig", path)
        assert path.stat().st_size == 50

    def test_missing_file_is_not_an_error(self, tmp_path):
        injector = FaultInjector(parse_fault_spec("cache_corrupt:p=1"))
        missing = tmp_path / "nope.json"
        assert injector.maybe_corrupt_file("cache_corrupt", "d", missing) is False

    def test_param_lookup_with_default(self):
        injector = FaultInjector(parse_fault_spec("task_hang:s=0.25"))
        assert injector.param("task_hang", "s", 30.0) == 0.25
        assert injector.param("worker_kill", "s", 30.0) == 30.0

    def test_kill_exit_code_is_distinctive(self):
        # The CI fault leg greps for this status; keep it stable.
        assert WORKER_KILL_EXIT_CODE == 113


class TestGlobalInjector:
    def test_configure_arms_and_mirrors_env(self):
        injector = configure_faults("counter_drop:p=0.5,seed=2")
        assert injector.active
        assert os.environ["REPRO_FAULTS"] == "counter_drop:p=0.5,seed=2"
        assert get_injector() is injector

    def test_configure_none_disarms(self):
        configure_faults("counter_drop:p=0.5")
        injector = configure_faults(None)
        assert not injector.active
        assert "REPRO_FAULTS" not in os.environ

    def test_lazy_parse_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "counter_nan:p=1")
        monkeypatch.setattr("repro.resilience.faults._global_injector", None)
        assert get_injector().armed("counter_nan")

    def test_bad_spec_surfaces_as_configuration_error(self):
        with pytest.raises(ConfigurationError):
            configure_faults("not_a_kind")


class TestBackoff:
    def test_deterministic(self):
        a = backoff_delay(2, seed=5, key="item-3")
        b = backoff_delay(2, seed=5, key="item-3")
        assert a == b

    def test_exponential_growth_within_jitter_band(self):
        for attempt in range(6):
            delay = backoff_delay(attempt, base_s=0.1, cap_s=100.0, key="k")
            ideal = 0.1 * 2**attempt
            assert 0.5 * ideal <= delay < 1.5 * ideal

    def test_cap_bounds_the_delay(self):
        delay = backoff_delay(30, base_s=0.1, cap_s=2.0, key="k")
        assert delay < 2.0 * 1.5

    def test_jitter_varies_across_keys(self):
        delays = {backoff_delay(0, key=f"item-{i}") for i in range(50)}
        assert len(delays) > 1

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            backoff_delay(-1)

    def test_policy_validates_and_delegates(self):
        policy = RetryPolicy(retries=3, base_s=0.2, cap_s=1.0, seed=9)
        assert policy.delay_s("k", 1) == backoff_delay(
            1, base_s=0.2, cap_s=1.0, seed=9, key="k"
        )
        with pytest.raises(ConfigurationError):
            RetryPolicy(retries=-1)

    def test_zero_base_means_no_sleep(self):
        assert backoff_delay(4, base_s=0.0, key="k") == 0.0


class TestQualityHelpers:
    def test_issue_render_and_summary(self):
        from repro.resilience import DataQualityIssue, issue_summary

        issues = [
            DataQualityIssue("skipped-row", "line 3", "too few columns"),
            DataQualityIssue("skipped-row", "line 5", "too few columns"),
            DataQualityIssue("nan-bandwidth", "line 7", "NaN"),
        ]
        assert issues[0].render() == "skipped-row @ line 3: too few columns"
        summary = issue_summary(issues)
        assert summary.startswith("3 issue(s)")
        assert "2 skipped-row" in summary
        assert "1 nan-bandwidth" in summary
        assert issue_summary([]) == "no data-quality issues"

    def test_quality_widened_errors_scale_and_cap(self):
        from repro.core import quality_widened_errors
        from repro.core.uncertainty import (
            QUALITY_ERROR_CAP,
            QUALITY_ERROR_PER_ISSUE,
        )
        from repro.resilience import DataQualityIssue

        issue = DataQualityIssue("dropped-sample", "x", "y")
        bw0, lat0 = quality_widened_errors([])
        bw2, lat2 = quality_widened_errors([issue, issue])
        assert bw2 == pytest.approx(bw0 + 2 * QUALITY_ERROR_PER_ISSUE)
        assert lat2 == lat0
        bw_many, _ = quality_widened_errors([issue] * 1000)
        assert bw_many == pytest.approx(bw0 + QUALITY_ERROR_CAP)
        assert math.isfinite(bw_many)
