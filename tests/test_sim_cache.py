"""Cache tag arrays: hits, LRU, eviction, writebacks."""

import pytest

from repro.machines import CacheSpec
from repro.sim import CacheArray


def _tiny_cache(ways: int = 2, sets: int = 4) -> CacheArray:
    spec = CacheSpec(1, sets * ways * 64, 64, 10, associativity=ways)
    return CacheArray(spec, "test")


class TestBasics:
    def test_miss_then_fill_then_hit(self):
        cache = _tiny_cache()
        assert not cache.access(0)
        cache.fill(0)
        assert cache.access(0)

    def test_line_of_alignment(self):
        cache = _tiny_cache()
        assert cache.line_of(100) == 64
        assert cache.line_of(63) == 0

    def test_probe_does_not_touch_lru(self):
        cache = _tiny_cache(ways=2, sets=1)
        cache.fill(0)
        cache.fill(64)
        cache.probe(0)  # must NOT refresh line 0
        cache.fill(128)  # evicts LRU = line 0
        assert not cache.probe(0)
        assert cache.probe(64)


class TestLru:
    def test_eviction_order_is_lru(self):
        cache = _tiny_cache(ways=2, sets=1)
        cache.fill(0)
        cache.fill(64)
        cache.access(0)  # 0 becomes MRU
        cache.fill(128)  # evicts 64
        assert cache.probe(0)
        assert not cache.probe(64)

    def test_refill_refreshes_without_eviction(self):
        cache = _tiny_cache(ways=2, sets=1)
        cache.fill(0)
        cache.fill(64)
        assert cache.fill(0) is None  # already present
        assert cache.resident_lines() == 2


class TestDirtyWritebacks:
    def test_clean_eviction_returns_none(self):
        cache = _tiny_cache(ways=1, sets=1)
        cache.fill(0)
        assert cache.fill(64) is None

    def test_dirty_eviction_returns_victim(self):
        cache = _tiny_cache(ways=1, sets=1)
        cache.fill(0, dirty=True)
        assert cache.fill(64) == 0
        assert cache.dirty_evictions == 1

    def test_write_access_marks_dirty(self):
        cache = _tiny_cache(ways=1, sets=1)
        cache.fill(0)
        cache.access(0, write=True)
        assert cache.fill(64) == 0  # write made it dirty


class TestInvalidate:
    def test_invalidate_present_line(self):
        cache = _tiny_cache()
        cache.fill(0)
        assert cache.invalidate(0)
        assert not cache.probe(0)

    def test_invalidate_absent_line(self):
        assert not _tiny_cache().invalidate(0)


class TestSetMapping:
    def test_different_sets_do_not_conflict(self):
        cache = _tiny_cache(ways=1, sets=4)
        for i in range(4):
            cache.fill(i * 64)
        assert cache.resident_lines() == 4
        assert cache.evictions == 0

    def test_same_set_conflicts(self):
        cache = _tiny_cache(ways=1, sets=4)
        cache.fill(0)
        cache.fill(4 * 64)  # maps to set 0 again
        assert cache.evictions == 1
