"""Uncertainty propagation for the MLP metric."""

import pytest

from repro.core import (
    decision_is_robust,
    mlp_uncertainty,
    profile_elasticity,
    MlpCalculator,
)
from repro.errors import ConfigurationError


class TestElasticity:
    def test_flat_region_has_low_elasticity(self, skl):
        calc = MlpCalculator(skl)
        s = profile_elasticity(calc, 0.2 * skl.memory.peak_bw_bytes)
        assert 0 <= s < 0.5

    def test_knee_region_has_high_elasticity(self, skl):
        """The SKL curve jumps 147->171 ns between 84% and 86%."""
        calc = MlpCalculator(skl)
        s = profile_elasticity(calc, 0.85 * skl.memory.peak_bw_bytes)
        assert s > 1.0

    def test_zero_bandwidth(self, skl):
        assert profile_elasticity(MlpCalculator(skl), 0.0) == 0.0


class TestUncertainty:
    def test_error_grows_near_the_knee(self, skl):
        low = mlp_uncertainty(skl, 0.2 * skl.memory.peak_bw_bytes)
        knee = mlp_uncertainty(skl, 0.85 * skl.memory.peak_bw_bytes)
        assert knee.n_avg_rel_error > low.n_avg_rel_error

    def test_interval_brackets_point(self, knl):
        u = mlp_uncertainty(knl, 233e9)
        assert u.n_avg_low < u.result.n_avg < u.n_avg_high

    def test_zero_errors_collapse_interval(self, skl):
        u = mlp_uncertainty(
            skl, 50e9, bandwidth_rel_error=0.0, latency_rel_error=0.0
        )
        assert u.n_avg_rel_error == 0.0
        assert u.n_avg_low == u.n_avg_high

    def test_negative_error_rejected(self, skl):
        with pytest.raises(ConfigurationError):
            mlp_uncertainty(skl, 50e9, bandwidth_rel_error=-0.1)

    def test_render(self, skl):
        text = mlp_uncertainty(skl, 106.9e9).render()
        assert "±" in text or "+-" in text or "%" in text


class TestDecisionRobustness:
    def test_deep_headroom_is_robust(self, knl):
        """CoMD-like point: far from any threshold."""
        u = mlp_uncertainty(knl, 27e9)
        assert decision_is_robust(u, knl, binding_level=2)

    def test_boundary_point_is_fragile(self, knl):
        """ISx-like point hovering at the L1 file with a big error bar."""
        u = mlp_uncertainty(
            knl, 233e9, bandwidth_rel_error=0.10, latency_rel_error=0.10
        )
        assert not decision_is_robust(u, knl, binding_level=1)

    def test_saturated_point_is_robust(self, skl):
        """ISx/SKL: even the low edge of the bar stays at FULL."""
        u = mlp_uncertainty(
            skl, 106.9e9, bandwidth_rel_error=0.01, latency_rel_error=0.01
        )
        assert decision_is_robust(u, skl, binding_level=1)
