"""Content-addressed sim cache: key stability, corruption, equivalence."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.machines import get_machine
from repro.perf.cache import (
    SimCache,
    cached_run_trace,
    digest_for,
    stable_digest,
)
from repro.sim import SimConfig, run_trace
from repro.sim.trace import trace_from_addresses
from repro.xmem.kernels import throughput_trace


@pytest.fixture(autouse=True)
def _fault_free_baseline(monkeypatch):
    """This file asserts exact hit/miss behavior: park any ambient
    ``REPRO_FAULTS`` spec (CI fault leg) and restore it afterwards.
    Likewise pin unsanitized mode — sanitized runs bypass the cache by
    contract (docs/SANITIZER.md), which would zero every counter here."""
    import os

    from repro.resilience import configure_faults

    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    ambient = os.environ.get("REPRO_FAULTS")
    configure_faults(None)
    yield
    configure_faults(ambient)


@pytest.fixture
def skl_inputs(skl):
    trace = throughput_trace(
        threads=2,
        accesses_per_thread=300,
        line_bytes=skl.line_bytes,
        gap_cycles=20.0,
    )
    return trace, SimConfig(machine=skl, sim_cores=2)


class TestDigestStability:
    def test_dict_key_order_is_irrelevant(self):
        a = {"alpha": 1, "beta": [1, 2, {"x": 1.5, "y": 2.5}]}
        b = {"beta": [1, 2, {"y": 2.5, "x": 1.5}], "alpha": 1}
        assert stable_digest(a) == stable_digest(b)

    def test_value_changes_are_detected(self):
        assert stable_digest({"a": 1}) != stable_digest({"a": 2})

    def test_digest_is_deterministic_across_calls(self, skl_inputs):
        trace, config = skl_inputs
        assert digest_for(trace, config) == digest_for(trace, config)

    def test_rebuilt_identical_inputs_share_a_digest(self, skl):
        # Fresh (but equal) trace/config objects must hash identically:
        # content-addressing, not object identity.
        def build():
            trace = throughput_trace(
                threads=2,
                accesses_per_thread=100,
                line_bytes=skl.line_bytes,
                gap_cycles=8.0,
            )
            return trace, SimConfig(machine=get_machine("skl"), sim_cores=2)

        t1, c1 = build()
        t2, c2 = build()
        assert digest_for(t1, c1) == digest_for(t2, c2)

    @pytest.mark.parametrize(
        "override",
        [
            {"sim_cores": 1},
            {"window_per_core": 8},
            {"hw_prefetch": False},
            {"l1_hit_cycles": 5.0},
            {"tlb_entries": 64},
        ],
    )
    def test_any_config_parameter_changes_digest(self, skl_inputs, override):
        trace, config = skl_inputs
        changed = dataclasses.replace(config, **override)
        assert digest_for(trace, config) != digest_for(trace, changed)

    def test_machine_physical_parameter_changes_digest(self, skl_inputs, skl):
        trace, config = skl_inputs
        faster = dataclasses.replace(config, machine=skl.with_frequency(4.0e9))
        assert digest_for(trace, config) != digest_for(trace, faster)

    def test_trace_contents_change_digest(self, skl):
        config = SimConfig(machine=skl, sim_cores=1)
        t1 = trace_from_addresses([[0, 64, 128]], line_bytes=skl.line_bytes)
        t2 = trace_from_addresses([[0, 64, 192]], line_bytes=skl.line_bytes)
        assert digest_for(t1, config) != digest_for(t2, config)

    def test_gap_cycles_change_digest(self, skl):
        config = SimConfig(machine=skl, sim_cores=1)
        t1 = trace_from_addresses([[0, 64]], line_bytes=skl.line_bytes, gap_cycles=1.0)
        t2 = trace_from_addresses([[0, 64]], line_bytes=skl.line_bytes, gap_cycles=2.0)
        assert digest_for(t1, config) != digest_for(t2, config)


class TestSimCacheStore:
    def test_miss_then_hit_roundtrip(self, tmp_path, skl_inputs):
        trace, config = skl_inputs
        cache = SimCache(tmp_path, enabled=True)
        first = cached_run_trace(trace, config, cache=cache)
        second = cached_run_trace(trace, config, cache=cache)
        assert cache.counters.misses == 1
        assert cache.counters.hits == 1
        assert cache.counters.stores == 1
        assert first.fingerprint() == second.fingerprint()

    def test_hit_equals_uncached_run_exactly(self, tmp_path, skl_inputs):
        trace, config = skl_inputs
        cache = SimCache(tmp_path, enabled=True)
        cached_run_trace(trace, config, cache=cache)  # populate
        replayed = cached_run_trace(trace, config, cache=cache)
        fresh = run_trace(trace, config)
        assert replayed.fingerprint() == fresh.fingerprint()
        # Spot-check the numbers behind the fingerprint.
        assert replayed.elapsed_ns == fresh.elapsed_ns
        assert replayed.memory.latency_sum_ns == fresh.memory.latency_sum_ns
        assert replayed.avg_occupancy(1) == fresh.avg_occupancy(1)
        assert replayed.avg_occupancy(2) == fresh.avg_occupancy(2)
        assert replayed.events_fired == fresh.events_fired

    def test_corrupt_entry_is_a_warned_miss_not_a_crash(
        self, tmp_path, skl_inputs
    ):
        trace, config = skl_inputs
        cache = SimCache(tmp_path, enabled=True)
        baseline = cached_run_trace(trace, config, cache=cache)
        digest = digest_for(trace, config)
        path = cache.path_for(digest)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])  # truncate
        with pytest.warns(UserWarning, match="corrupt"):
            recovered = cached_run_trace(trace, config, cache=cache)
        assert recovered.fingerprint() == baseline.fingerprint()
        # The re-simulated result was stored back and is loadable again.
        assert json.loads(path.read_text())["digest"] == digest

    def test_wrong_schema_entry_is_a_miss(self, tmp_path, skl_inputs):
        trace, config = skl_inputs
        cache = SimCache(tmp_path, enabled=True)
        cached_run_trace(trace, config, cache=cache)
        digest = digest_for(trace, config)
        path = cache.path_for(digest)
        doc = json.loads(path.read_text())
        doc["schema"] = 9999
        path.write_text(json.dumps(doc))
        with pytest.warns(UserWarning):
            cached_run_trace(trace, config, cache=cache)
        assert cache.counters.misses == 2  # initial + schema mismatch

    def test_disabled_cache_never_touches_disk(self, tmp_path, skl_inputs):
        trace, config = skl_inputs
        cache = SimCache(tmp_path, enabled=False)
        cached_run_trace(trace, config, cache=cache)
        cached_run_trace(trace, config, cache=cache)
        assert list(tmp_path.iterdir()) == []
        assert cache.counters.hits == 0
        assert cache.counters.stores == 0

    def test_stats_dict_roundtrip_is_exact(self, skl_inputs):
        trace, config = skl_inputs
        stats = run_trace(trace, config)
        from repro.sim.stats import SimStats

        rebuilt = SimStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        )
        assert rebuilt.fingerprint() == stats.fingerprint()
        assert rebuilt.wall_s == stats.wall_s


class TestQuarantine:
    def test_corrupt_entry_is_quarantined_not_deleted(
        self, tmp_path, skl_inputs
    ):
        trace, config = skl_inputs
        cache = SimCache(tmp_path, enabled=True)
        cached_run_trace(trace, config, cache=cache)
        digest = digest_for(trace, config)
        path = cache.path_for(digest)
        damaged = b"{ this is not json"
        path.write_bytes(damaged)
        with pytest.warns(UserWarning, match="quarantined"):
            cache.load(digest)
        quarantined = path.with_suffix(".corrupt")
        assert quarantined.exists()
        # The damaged bytes survive for forensics...
        assert quarantined.read_bytes() == damaged
        # ...and the original path no longer satisfies lookups.
        assert not path.exists()

    def test_quarantined_entry_is_resimulated_and_restored(
        self, tmp_path, skl_inputs
    ):
        trace, config = skl_inputs
        cache = SimCache(tmp_path, enabled=True)
        baseline = cached_run_trace(trace, config, cache=cache)
        digest = digest_for(trace, config)
        path = cache.path_for(digest)
        path.write_text("garbage")
        with pytest.warns(UserWarning, match="corrupt"):
            recovered = cached_run_trace(trace, config, cache=cache)
        assert recovered.fingerprint() == baseline.fingerprint()
        # A fresh, valid entry exists again alongside the quarantined one.
        assert json.loads(path.read_text())["digest"] == digest
        assert path.with_suffix(".corrupt").exists()

    def test_injected_corruption_recovers_bit_identically(
        self, tmp_path, skl_inputs
    ):
        # cache_corrupt damages each entry right after store; the next
        # lookup must quarantine it, re-simulate, and agree exactly with
        # the clean result.
        from repro.resilience import configure_faults

        trace, config = skl_inputs
        clean_cache = SimCache(tmp_path / "clean", enabled=True)
        baseline = cached_run_trace(trace, config, cache=clean_cache)
        try:
            configure_faults("cache_corrupt:p=1,seed=3")
            cache = SimCache(tmp_path / "faulty", enabled=True)
            first = cached_run_trace(trace, config, cache=cache)
            with pytest.warns(UserWarning, match="corrupt"):
                second = cached_run_trace(trace, config, cache=cache)
        finally:
            configure_faults(None)
        assert first.fingerprint() == baseline.fingerprint()
        assert second.fingerprint() == baseline.fingerprint()
