"""Property-based tests on Little's law and the fixed-point solver."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bandwidth_from_mlp, latency_from_mlp, mlp_from_bandwidth
from repro.machines import get_machine
from repro.memory import model_for_machine
from repro.perfmodel import solve_operating_point

MACHINES = {name: get_machine(name) for name in ("skl", "knl", "a64fx")}

bw = st.floats(min_value=1e6, max_value=1e12, allow_nan=False)
lat = st.floats(min_value=1.0, max_value=2000.0, allow_nan=False)
cls = st.sampled_from([32, 64, 128, 256])
cores = st.integers(min_value=1, max_value=256)


class TestEquationAlgebra:
    @given(bw=bw, lat=lat, cls=cls, cores=cores)
    def test_bandwidth_roundtrip(self, bw, lat, cls, cores):
        n = mlp_from_bandwidth(bw, lat, cls, cores=cores)
        back = bandwidth_from_mlp(n, lat, cls, cores=cores)
        assert math.isclose(back, bw, rel_tol=1e-9)

    @given(bw=bw, lat=lat, cls=cls, cores=cores)
    def test_latency_roundtrip(self, bw, lat, cls, cores):
        n = mlp_from_bandwidth(bw, lat, cls, cores=cores)
        if n <= 0:
            return
        back = latency_from_mlp(n, bw, cls, cores=cores)
        assert math.isclose(back, lat, rel_tol=1e-9)

    @given(bw=bw, lat=lat, cls=cls)
    def test_mlp_scales_linearly_with_bandwidth(self, bw, lat, cls):
        n1 = mlp_from_bandwidth(bw, lat, cls)
        n2 = mlp_from_bandwidth(2 * bw, lat, cls)
        assert math.isclose(n2, 2 * n1, rel_tol=1e-9)

    @given(bw=bw, lat=lat, cls=cls, cores=st.integers(2, 64))
    def test_per_core_division(self, bw, lat, cls, cores):
        total = mlp_from_bandwidth(bw, lat, cls, cores=1)
        per_core = mlp_from_bandwidth(bw, lat, cls, cores=cores)
        assert math.isclose(total, per_core * cores, rel_tol=1e-9)


class TestSolverProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        machine_name=st.sampled_from(["skl", "knl", "a64fx"]),
        demand=st.floats(min_value=0.05, max_value=64.0),
        level=st.sampled_from([1, 2]),
    )
    def test_solution_satisfies_littles_law(self, machine_name, demand, level):
        machine = MACHINES[machine_name]
        point = solve_operating_point(machine, demand, level)
        n = mlp_from_bandwidth(
            point.bandwidth_bytes,
            point.latency_ns,
            machine.line_bytes,
            cores=machine.active_cores,
        )
        assert math.isclose(n, point.n_observed, rel_tol=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(
        machine_name=st.sampled_from(["skl", "knl", "a64fx"]),
        demand=st.floats(min_value=0.05, max_value=64.0),
        level=st.sampled_from([1, 2]),
    )
    def test_bandwidth_never_exceeds_achievable(self, machine_name, demand, level):
        machine = MACHINES[machine_name]
        point = solve_operating_point(machine, demand, level)
        assert point.bandwidth_bytes <= machine.memory.achievable_bw_bytes * (1 + 1e-6)

    @settings(max_examples=60, deadline=None)
    @given(
        machine_name=st.sampled_from(["skl", "knl", "a64fx"]),
        demand=st.floats(min_value=0.05, max_value=64.0),
        level=st.sampled_from([1, 2]),
    )
    def test_latency_at_least_curve_value(self, machine_name, demand, level):
        machine = MACHINES[machine_name]
        point = solve_operating_point(machine, demand, level)
        model = model_for_machine(machine)
        u = min(1.0, point.bandwidth_bytes / machine.memory.peak_bw_bytes)
        assert point.latency_ns >= model.latency_ns(u) - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(
        machine_name=st.sampled_from(["skl", "knl", "a64fx"]),
        d1=st.floats(min_value=0.05, max_value=32.0),
        d2=st.floats(min_value=0.05, max_value=32.0),
        level=st.sampled_from([1, 2]),
    )
    def test_bandwidth_monotone_in_demand(self, machine_name, d1, d2, level):
        machine = MACHINES[machine_name]
        lo, hi = sorted((d1, d2))
        p_lo = solve_operating_point(machine, lo, level)
        p_hi = solve_operating_point(machine, hi, level)
        assert p_hi.bandwidth_bytes >= p_lo.bandwidth_bytes - 1e-3

    @settings(max_examples=40, deadline=None)
    @given(
        machine_name=st.sampled_from(["skl", "knl", "a64fx"]),
        demand=st.floats(min_value=0.05, max_value=64.0),
    )
    def test_sustained_mlp_clipped_at_file_size(self, machine_name, demand):
        machine = MACHINES[machine_name]
        point = solve_operating_point(machine, demand, 1)
        assert point.n_sustained <= machine.l1.mshrs + 1e-9
        assert point.n_sustained <= demand + 1e-9
