"""Shared-LLC (L3) modeling: the SKL memory-traffic boundary."""

import random

import pytest

from repro.sim import SimConfig, run_trace, trace_from_addresses


def _reuse_trace(lines, line=64, reps=2):
    """Two passes over a working set bigger than L2 but inside the L3."""
    addrs = []
    for _ in range(reps):
        addrs.extend(i * line for i in range(lines))
    return trace_from_addresses([addrs, list(addrs)], line_bytes=line, gap_cycles=1.0)


def _random_trace(n=1200, line=64, seed=3):
    rng = random.Random(seed)
    return trace_from_addresses(
        [[rng.randrange(1 << 23) * line for _ in range(n)] for _ in range(2)],
        line_bytes=line,
        gap_cycles=2.0,
    )


@pytest.fixture(scope="module")
def reuse_runs(skl):
    """One L2-spilling reuse trace run with and without the L3."""
    # 18k lines x 64B = 1.1 MiB per thread: spills the 1 MiB L2, fits
    # the 2.75 MiB shared-L3 slice of a 2-core sim.
    trace = _reuse_trace(lines=18000)

    def config(l3: bool) -> SimConfig:
        return SimConfig(
            machine=skl,
            sim_cores=2,
            window_per_core=8,
            hw_prefetch=False,
            l3_enabled=l3,
        )

    return run_trace(trace, config(False)), run_trace(trace, config(True))


@pytest.fixture(scope="module")
def random_l3_run(skl):
    return run_trace(
        _random_trace(),
        SimConfig(machine=skl, sim_cores=2, window_per_core=16, l3_enabled=True),
    )


class TestL3Filtering:
    def test_l3_absorbs_l2_capacity_misses(self, reuse_runs):
        """Second pass hits the LLC; memory traffic is filtered down."""
        without, with_l3 = reuse_runs
        assert with_l3.l3.hits > 0
        assert with_l3.memory.total_bytes < without.memory.total_bytes

    def test_l3_hits_are_faster_than_memory(self, reuse_runs):
        without, with_l3 = reuse_runs
        assert with_l3.elapsed_ns < without.elapsed_ns

    def test_l3_stats_zero_when_disabled(self, skl, small_skl_config):
        stats = run_trace(_random_trace(n=400), small_skl_config)
        assert stats.l3.hits == 0 and stats.l3.misses == 0

    def test_random_over_huge_region_misses_l3(self, random_l3_run):
        """Random lines over 512MiB: the L3 filters almost nothing."""
        stats = random_l3_run
        assert stats.l3.misses > 10 * max(1, stats.l3.hits)

    def test_littles_law_holds_with_l3(self, random_l3_run):
        assert random_l3_run.littles_law_check(2)["relative_error"] < 0.05
