"""Per-rule tests: each built-in rule has passing and failing cases."""

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.analysis import LintRunner, Severity, SourceFile, get_rule
from repro.analysis.rules.cachekey import (
    check_canonical_coverage,
    check_digest_sensitivity,
)
from repro.analysis.rules.specs import MSHR_BOUND_BY_DESIGN, check_machine
from repro.machines.registry import get_machine

#: Path prefix that puts a fixture inside the determinism-guarded scope.
SIM = Path("src/repro/sim")


def _lint(rule_prefix, path, text):
    source = SourceFile(Path(path), text=text)
    return LintRunner([get_rule(rule_prefix)]).run_sources([source])


class TestDeterminismRule:
    def test_clean_seeded_rng_passes(self):
        text = (
            "import random\n"
            "def gen(rng: random.Random):\n"
            "    return rng.random()\n"
            "parent = random.Random(42)\n"
        )
        assert _lint("DET", SIM / "gen.py", text).violations == []

    def test_wall_clock_flagged(self):
        result = _lint("DET", SIM / "x.py", "import time\nt = time.time()\n")
        assert [v.rule_id for v in result.violations] == ["DET001"]
        assert result.exit_code == 1

    def test_from_import_alias_flagged(self):
        text = "from time import perf_counter as pc\nt = pc()\n"
        assert [
            v.rule_id for v in _lint("DET", SIM / "x.py", text).violations
        ] == ["DET001"]

    def test_datetime_now_flagged(self):
        text = "import datetime\nts = datetime.datetime.now()\n"
        assert [
            v.rule_id for v in _lint("DET", SIM / "x.py", text).violations
        ] == ["DET001"]

    def test_global_rng_flagged(self):
        text = "import random\nx = random.randrange(10)\n"
        assert [
            v.rule_id for v in _lint("DET", SIM / "x.py", text).violations
        ] == ["DET002"]

    def test_unseeded_random_flagged_seeded_ok(self):
        bad = _lint("DET", SIM / "x.py", "import random\nr = random.Random()\n")
        good = _lint("DET", SIM / "x.py", "import random\nr = random.Random(3)\n")
        assert [v.rule_id for v in bad.violations] == ["DET002"]
        assert good.violations == []

    def test_numpy_legacy_global_flagged(self):
        text = "import numpy as np\nx = np.random.randint(10)\n"
        assert [
            v.rule_id for v in _lint("DET", SIM / "x.py", text).violations
        ] == ["DET002"]

    def test_numpy_unseeded_default_rng_flagged_seeded_ok(self):
        bad = _lint(
            "DET", SIM / "x.py", "import numpy as np\nr = np.random.default_rng()\n"
        )
        good = _lint(
            "DET", SIM / "x.py", "import numpy as np\nr = np.random.default_rng(3)\n"
        )
        assert [v.rule_id for v in bad.violations] == ["DET002"]
        assert good.violations == []

    def test_numpy_unseeded_bit_generator_flagged(self):
        text = "import numpy as np\ng = np.random.PCG64()\n"
        assert [
            v.rule_id for v in _lint("DET", SIM / "x.py", text).violations
        ] == ["DET002"]

    def test_numpy_from_import_default_rng_flagged(self):
        text = "from numpy.random import default_rng\nr = default_rng()\n"
        assert [
            v.rule_id for v in _lint("DET", SIM / "x.py", text).violations
        ] == ["DET002"]

    def test_numpy_generator_method_calls_pass(self):
        text = (
            "import numpy as np\n"
            "def gen(rng: np.random.Generator):\n"
            "    return rng.integers(0, 10, size=5)\n"
        )
        assert _lint("DET", SIM / "gen.py", text).violations == []

    def test_out_of_scope_path_not_checked(self):
        result = _lint(
            "DET", "src/repro/io/x.py", "import time\nt = time.time()\n"
        )
        assert result.violations == []

    def test_noqa_suppresses(self):
        text = "import time\nt = time.time()  # repro: noqa[DET001]\n"
        assert _lint("DET", SIM / "x.py", text).violations == []


class TestUnitSafetyRule:
    def test_helper_use_passes(self):
        text = (
            "from repro.units import gb_per_s, ns\n"
            "bw = gb_per_s(106.9)\n"
            "lat = ns(145)\n"
            "lines = 1024 * 64\n"  # int literals are address arithmetic
        )
        assert _lint("UNIT", "src/repro/core/x.py", text).violations == []

    def test_si_float_flagged(self):
        result = _lint("UNIT", "src/repro/core/x.py", "bw = x * 1e9\n")
        assert [v.rule_id for v in result.violations] == ["UNIT001"]

    def test_inverse_si_float_flagged(self):
        result = _lint("UNIT", "src/repro/core/x.py", "s = lat / 1e-9\n")
        assert [v.rule_id for v in result.violations] == ["UNIT001"]

    def test_binary_pow_flagged(self):
        result = _lint("UNIT", "src/repro/core/x.py", "size = n * 2**30\n")
        assert [v.rule_id for v in result.violations] == ["UNIT002"]

    def test_units_py_itself_exempt(self):
        result = _lint("UNIT", "src/repro/units.py", "GIGA = 2.0 * 1e9\n")
        assert result.violations == []

    def test_tests_exempt(self):
        result = _lint("UNIT", "tests/test_x.py", "assert y == x * 1e9\n")
        assert result.violations == []


class TestSlotsHygieneRule:
    def test_declared_slots_pass(self):
        text = (
            "class Node:\n"
            "    __slots__ = ('a', 'b')\n"
            "    def __init__(self):\n"
            "        self.a = 0\n"
            "        self.b = 0\n"
        )
        assert _lint("SLOT", SIM / "node.py", text).violations == []

    def test_out_of_slots_write_flagged(self):
        text = (
            "class Node:\n"
            "    __slots__ = ('a',)\n"
            "    def reset(self):\n"
            "        self.stray = 1\n"
        )
        result = _lint("SLOT", SIM / "node.py", text)
        assert [v.rule_id for v in result.violations] == ["SLOT001"]
        assert "stray" in result.violations[0].message

    def test_slots_dataclass_fields_are_slots(self):
        text = (
            "from dataclasses import dataclass\n"
            "@dataclass(slots=True)\n"
            "class Point:\n"
            "    x: int\n"
            "    def bump(self):\n"
            "        self.x += 1\n"
            "        self.y = 2\n"
        )
        result = _lint("SLOT", SIM / "p.py", text)
        assert [v.rule_id for v in result.violations] == ["SLOT001"]
        assert "self.y" in result.violations[0].message

    def test_inherited_slots_resolved(self):
        text = (
            "class Base:\n"
            "    __slots__ = ('a',)\n"
            "class Child(Base):\n"
            "    __slots__ = ('b',)\n"
            "    def go(self):\n"
            "        self.a = 1\n"
            "        self.b = 2\n"
        )
        assert _lint("SLOT", SIM / "c.py", text).violations == []

    def test_opaque_base_skipped(self):
        # Unknown base may carry __dict__; the rule must not guess.
        text = (
            "from somewhere import Base\n"
            "class Child(Base):\n"
            "    __slots__ = ()\n"
            "    def go(self):\n"
            "        self.anything = 1\n"
        )
        assert _lint("SLOT", SIM / "c.py", text).violations == []

    def test_unslotted_class_skipped(self):
        text = (
            "class Plain:\n"
            "    def go(self):\n"
            "        self.anything = 1\n"
        )
        assert _lint("SLOT", SIM / "c.py", text).violations == []


@dataclasses.dataclass(frozen=True)
class _Inner:
    gamma: int = 3


@dataclasses.dataclass(frozen=True)
class _Outer:
    alpha: int = 1
    beta: float = 2.0
    inner: _Inner = dataclasses.field(default_factory=_Inner)


def _full_canonical(obj):
    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}


def _digest_fields(*names):
    def _digest(obj):
        doc = {}
        for name in names:
            value = getattr(obj, name)
            doc[name] = (
                _full_canonical(value)
                if dataclasses.is_dataclass(value)
                else value
            )
        return hashlib.sha256(
            json.dumps(doc, sort_keys=True, default=str).encode()
        ).hexdigest()

    return _digest


class TestCacheKeyChecks:
    def test_full_coverage_passes(self):
        found = list(
            check_canonical_coverage(
                _Outer(), _full_canonical, report_path="t.py", report_line=1
            )
        )
        assert found == []

    def test_missing_field_flagged(self):
        def lossy(obj):
            doc = _full_canonical(obj)
            doc.pop("beta", None)
            return doc

        found = list(
            check_canonical_coverage(
                _Outer(), lossy, report_path="t.py", report_line=1
            )
        )
        assert [v.rule_id for v in found] == ["KEY001"]
        assert "beta" in found[0].message

    def test_nested_dataclass_walked(self):
        def lossy(obj):
            doc = _full_canonical(obj)
            doc.pop("gamma", None)
            return doc

        found = list(
            check_canonical_coverage(
                _Outer(), lossy, report_path="t.py", report_line=1
            )
        )
        assert [v.rule_id for v in found] == ["KEY001"]
        assert "gamma" in found[0].message

    def test_sensitive_digest_passes(self):
        digest = _digest_fields("alpha", "beta", "inner")
        found = list(
            check_digest_sensitivity(
                _Outer(), digest, report_path="t.py", report_line=1
            )
        )
        assert found == []

    def test_ignored_field_flagged(self):
        digest = _digest_fields("alpha", "inner")  # beta never hashed
        found = list(
            check_digest_sensitivity(
                _Outer(), digest, report_path="t.py", report_line=1
            )
        )
        assert [v.rule_id for v in found] == ["KEY002"]
        assert "beta" in found[0].message

    def test_live_cache_is_clean(self):
        source = SourceFile(Path("src/repro/perf/cache.py"), text="x = 1\n")
        result = LintRunner([get_rule("KEY")]).run_sources([source])
        assert result.errors == []

    def test_columnar_trace_fields_all_reach_digest(self):
        from repro.sim.coltrace import ColumnarTrace, trace_digest
        from repro.sim.trace import Access, AccessKind, ThreadTrace, Trace

        trace = ColumnarTrace.from_trace(
            Trace(
                (
                    ThreadTrace(
                        0,
                        (
                            Access(0, AccessKind.LOAD, 1.0),
                            Access(64, AccessKind.STORE, 2.0),
                        ),
                    ),
                ),
                routine="audit",
            )
        )
        found = list(
            check_digest_sensitivity(
                trace, trace_digest, report_path="t.py", report_line=1
            )
        )
        assert found == []

    def test_columnar_digest_blind_spot_flagged(self):
        import dataclasses as dc

        from repro.sim.coltrace import ColumnarTrace, trace_digest
        from repro.sim.trace import Access, AccessKind, ThreadTrace, Trace

        trace = ColumnarTrace.from_trace(
            Trace(
                (ThreadTrace(0, (Access(0, AccessKind.LOAD, 1.0),)),),
                routine="audit",
            )
        )

        def blind_to_line_bytes(t):
            return trace_digest(dc.replace(t, line_bytes=64))

        found = list(
            check_digest_sensitivity(
                trace, blind_to_line_bytes, report_path="t.py", report_line=1
            )
        )
        assert [v.rule_id for v in found] == ["KEY002"]
        assert "line_bytes" in found[0].message


class _StubCache:
    def __init__(self, level, mshrs):
        self.level = level
        self.mshrs = mshrs


class _StubMemory:
    def __init__(self, idle_latency_ns, achievable_bw_bytes):
        self.idle_latency_ns = idle_latency_ns
        self.achievable_bw_bytes = achievable_bw_bytes


class _StubMachine:
    """Minimal duck-typed MachineSpec for check_machine tests."""

    def __init__(
        self,
        *,
        mshrs=16,
        line_bytes=64,
        cores=4,
        idle_latency_ns=100.0,
        achievable_bw_bytes=10e9,
    ):
        self.name = "stub"
        self.l1 = _StubCache(1, mshrs)
        self.l2 = _StubCache(2, mshrs)
        self.line_bytes = line_bytes
        self.active_cores = cores
        self.memory = _StubMemory(idle_latency_ns, achievable_bw_bytes)
        self.latency_calibration = ()

    def max_bw_from_mshrs(self, level, latency_ns):
        return self.active_cores * self.l2.mshrs * self.line_bytes / (
            latency_ns * 1e-9
        )


class TestSpecConsistency:
    def test_consistent_machine_passes(self):
        # 4 cores x 16 MSHRs x 64 B / 100 ns = 40.96 GB/s >= 10 GB/s.
        assert list(check_machine(_StubMachine())) == []

    def test_paper_machines_pass(self):
        for name in ("skl", "knl", "a64fx"):
            assert list(check_machine(get_machine(name))) == [], name

    def test_zero_mshrs_flagged(self):
        found = list(check_machine(_StubMachine(mshrs=0)))
        assert {v.rule_id for v in found} == {"SPEC001"}
        assert len(found) == 2  # both cache levels

    def test_non_power_of_two_line_flagged(self):
        found = list(check_machine(_StubMachine(line_bytes=96)))
        assert [v.rule_id for v in found] == ["SPEC002"]

    def test_overcommitted_bandwidth_flagged(self):
        machine = _StubMachine(achievable_bw_bytes=100e9)  # ceiling ~41 GB/s
        found = list(check_machine(machine))
        assert [v.rule_id for v in found] == ["SPEC003"]
        assert found[0].severity is Severity.ERROR

    def test_mshr_bound_by_design_downgraded(self):
        machine = _StubMachine(achievable_bw_bytes=100e9)
        found = list(check_machine(machine, mshr_bound_ok=True))
        assert [v.rule_id for v in found] == ["SPEC003"]
        assert found[0].severity is Severity.WARNING
        assert "by design" in found[0].message

    def test_concept_machines_are_allowlisted(self):
        assert MSHR_BOUND_BY_DESIGN == {"hbm2e", "hbm3"}
        for name in MSHR_BOUND_BY_DESIGN:
            found = list(check_machine(get_machine(name), mshr_bound_ok=True))
            assert [v.rule_id for v in found] == ["SPEC003"]
            assert found[0].severity is Severity.WARNING


class TestResilienceHygieneRule:
    #: A path inside the guarded library scope.
    LIB = Path("src/repro/io/x.py")

    def test_handled_exception_passes(self):
        text = (
            "import warnings\n"
            "try:\n"
            "    work()\n"
            "except Exception as exc:\n"
            "    warnings.warn(f'degraded: {exc}')\n"
        )
        assert _lint("RES", self.LIB, text).violations == []

    def test_narrow_domain_type_passes(self):
        text = "try:\n    work()\nexcept KeyError:\n    pass\n"
        assert _lint("RES", self.LIB, text).violations == []

    def test_silent_exception_pass_flagged(self):
        text = "try:\n    work()\nexcept Exception:\n    pass\n"
        result = _lint("RES", self.LIB, text)
        assert [v.rule_id for v in result.violations] == ["RES001"]
        assert result.exit_code == 1

    def test_bare_except_continue_flagged(self):
        text = (
            "for item in items:\n"
            "    try:\n"
            "        work(item)\n"
            "    except:\n"
            "        continue\n"
        )
        assert [
            v.rule_id for v in _lint("RES", self.LIB, text).violations
        ] == ["RES001"]

    def test_oserror_pass_flagged(self):
        text = "try:\n    work()\nexcept OSError:\n    pass\n"
        assert [
            v.rule_id for v in _lint("RES", self.LIB, text).violations
        ] == ["RES001"]

    def test_tuple_containing_broad_type_flagged(self):
        text = "try:\n    work()\nexcept (OSError, TypeError):\n    return None\n"
        wrapped = "def f():\n" + "".join(
            "    " + line + "\n" for line in text.splitlines()
        )
        assert [
            v.rule_id for v in _lint("RES", self.LIB, wrapped).violations
        ] == ["RES001"]

    def test_return_of_bound_exception_passes(self):
        text = (
            "def f():\n"
            "    try:\n"
            "        return work()\n"
            "    except Exception as exc:\n"
            "        return exc\n"
        )
        assert _lint("RES", self.LIB, text).violations == []

    def test_resilience_layer_sanctioned(self):
        text = "try:\n    work()\nexcept Exception:\n    pass\n"
        path = Path("src/repro/resilience/faults.py")
        assert _lint("RES", path, text).violations == []

    def test_parallel_pool_machinery_sanctioned(self):
        text = "try:\n    work()\nexcept Exception:\n    pass\n"
        path = Path("src/repro/perf/parallel.py")
        assert _lint("RES", path, text).violations == []

    def test_tests_exempt(self):
        text = "try:\n    work()\nexcept Exception:\n    pass\n"
        assert _lint("RES", Path("tests/test_x.py"), text).violations == []

    def test_noqa_suppresses(self):
        text = (
            "try:\n"
            "    work()\n"
            "except OSError:  # repro: noqa[RES001] - best-effort cleanup\n"
            "    pass\n"
        )
        assert _lint("RES", self.LIB, text).violations == []


class TestBarrierRule:
    def test_flushed_probe_passes(self):
        text = (
            "def train(core, line):\n"
            "    core.l2_array.flush_batch()\n"
            "    for t in core.pf.observe(line):\n"
            "        if core.l2_array.probe(t):\n"
            "            return t\n"
            "    return None\n"
        )
        assert _lint("BARRIER", SIM / "h.py", text).violations == []

    def test_unflushed_probe_flagged(self):
        text = (
            "def train(core, line):\n"
            "    for t in core.pf.observe(line):\n"
            "        if core.l2_array.probe(t):\n"
            "            return t\n"
            "    return None\n"
        )
        result = _lint("BARRIER", SIM / "h.py", text)
        assert [v.rule_id for v in result.violations] == ["BARRIER001"]
        assert "flush_batch" in result.violations[0].message
        assert result.exit_code == 1

    def test_flush_on_one_branch_only_flagged(self):
        # Must-analysis: a flush under `if` does not guard the join.
        text = (
            "def peek(core, flag, t):\n"
            "    if flag:\n"
            "        core.l1_array.flush_batch()\n"
            "    return core.l1_array.probe(t)\n"
        )
        assert [
            v.rule_id for v in _lint("BARRIER", SIM / "h.py", text).violations
        ] == ["BARRIER001"]

    def test_flush_on_both_branches_passes(self):
        text = (
            "def peek(core, flag, t):\n"
            "    if flag:\n"
            "        core.l1_array.flush_batch()\n"
            "    else:\n"
            "        core.l1_array.flush_batch()\n"
            "    return core.l1_array.probe(t)\n"
        )
        assert _lint("BARRIER", SIM / "h.py", text).violations == []

    def test_touch_batch_kills_the_barrier(self):
        text = (
            "def stale(core, lines, writes, t):\n"
            "    core.l1_array.flush_batch()\n"
            "    core.l1_array.touch_batch(lines, writes)\n"
            "    return core.l1_array.probe(t)\n"
        )
        assert [
            v.rule_id for v in _lint("BARRIER", SIM / "h.py", text).violations
        ] == ["BARRIER001"]

    def test_self_flushing_mutators_count_as_barriers(self):
        text = (
            "def warm(core, line, t):\n"
            "    core.l1_array.access(line)\n"
            "    return core.l1_array.probe(t)\n"
        )
        assert _lint("BARRIER", SIM / "h.py", text).violations == []

    def test_probe_batch_exempt(self):
        text = (
            "def fast(core, lines):\n"
            "    return core.l1_array.probe_batch(lines)\n"
        )
        assert _lint("BARRIER", SIM / "h.py", text).violations == []

    def test_resident_reads_guarded(self):
        text = (
            "def count(core):\n"
            "    return core.l1_array.resident_lines() + core.tlb.resident_pages\n"
        )
        result = _lint("BARRIER", SIM / "h.py", text)
        assert [v.rule_id for v in result.violations] == ["BARRIER001"] * 2

    def test_batch_machinery_files_exempt(self):
        text = (
            "def probe(self, t):\n"
            "    return self._sets[0]\n"
        )
        assert _lint("BARRIER", SIM / "cache.py", text).violations == []
        assert _lint("BARRIER", SIM / "tlb.py", text).violations == []
        assert (
            _lint("BARRIER", Path("src/repro/core/x.py"), text).violations == []
        )

    def test_rebinding_receiver_root_kills(self):
        text = (
            "def swap(core, other, t):\n"
            "    core.l1_array.flush_batch()\n"
            "    core = other\n"
            "    return core.l1_array.probe(t)\n"
        )
        assert [
            v.rule_id for v in _lint("BARRIER", SIM / "h.py", text).violations
        ] == ["BARRIER001"]

    def test_noqa_suppresses(self):
        text = (
            "def peek(core, t):\n"
            "    return core.l1_array.probe(t)  # repro: noqa[BARRIER001]\n"
        )
        assert _lint("BARRIER", SIM / "h.py", text).violations == []


class TestFloatEqualityRule:
    def test_int_equality_passes(self):
        text = (
            "def check(n):\n"
            "    k = 3\n"
            "    return n == k or n != 7\n"
        )
        assert _lint("FPEQ", SIM / "m.py", text).violations == []

    def test_float_literal_equality_flagged(self):
        result = _lint("FPEQ", SIM / "m.py", "ok = x == 1.5\n")
        assert [v.rule_id for v in result.violations] == ["FPEQ001"]
        assert "isclose" in result.violations[0].message

    def test_float_local_tracked_through_dataflow(self):
        text = (
            "def drift(y):\n"
            "    z = 1.0\n"
            "    while z != y:\n"
            "        z = z / 2\n"
            "    return z\n"
        )
        assert [
            v.rule_id for v in _lint("FPEQ", SIM / "m.py", text).violations
        ] == ["FPEQ001"]

    def test_float_annotated_param_flagged(self):
        text = (
            "def same(a: float, b):\n"
            "    return a == b\n"
        )
        assert [
            v.rule_id for v in _lint("FPEQ", SIM / "m.py", text).violations
        ] == ["FPEQ001"]

    def test_rebound_to_int_forgets_floatness(self):
        text = (
            "def f(y):\n"
            "    z = 1.0\n"
            "    z = 3\n"
            "    return z == y\n"
        )
        assert _lint("FPEQ", SIM / "m.py", text).violations == []

    def test_ordering_comparisons_pass(self):
        text = "def f(x: float):\n    return x < 1.0 or x >= 0.5\n"
        assert _lint("FPEQ", SIM / "m.py", text).violations == []

    def test_division_result_flagged(self):
        text = "def f(a, b, c):\n    return a / b == c\n"
        assert [
            v.rule_id for v in _lint("FPEQ", SIM / "m.py", text).violations
        ] == ["FPEQ001"]

    def test_sanctioned_helper_exempt(self):
        text = (
            "def isclose_fast(a: float, b: float) -> bool:\n"
            "    return a == b or abs(a - b) < 1e-12\n"
        )
        assert _lint("FPEQ", SIM / "m.py", text).violations == []

    def test_perfmodel_in_scope_elsewhere_not(self):
        text = "ok = x == 1.5\n"
        flagged = _lint("FPEQ", Path("src/repro/perfmodel/m.py"), text)
        assert [v.rule_id for v in flagged.violations] == ["FPEQ001"]
        assert (
            _lint("FPEQ", Path("src/repro/core/m.py"), text).violations == []
        )


class TestFunctionDataflow:
    """The shared must-facts walker, driven directly."""

    @staticmethod
    def _run(text):
        import ast

        from repro.analysis import FunctionDataflow

        class Gen(FunctionDataflow):
            """gen('x') on gen(...) calls, kill on rebinds, log reads."""

            def __init__(self):
                self.reads = []

            def flow_expr(self, node, facts):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call) and isinstance(
                        sub.func, ast.Name
                    ):
                        if sub.func.id == "gen" and sub.args:
                            facts.add(sub.args[0].value)
                        elif sub.func.id == "read" and sub.args:
                            self.reads.append(
                                (sub.args[0].value, sub.args[0].value in facts)
                            )

            def flow_bind(self, target, facts):
                if isinstance(target, ast.Name):
                    facts.discard(target.id)

        flow = Gen()
        tree = ast.parse(text)
        exit_facts = flow.analyze(tree.body)
        return flow, exit_facts

    def test_straight_line_facts_flow(self):
        flow, exit_facts = self._run("gen('a')\nread('a')\nread('b')\n")
        assert flow.reads == [("a", True), ("b", False)]
        assert "a" in exit_facts

    def test_branches_intersect(self):
        text = (
            "if cond:\n"
            "    gen('a')\n"
            "    gen('b')\n"
            "else:\n"
            "    gen('a')\n"
            "read('a')\n"
            "read('b')\n"
        )
        flow, _ = self._run(text)
        assert ("a", True) in flow.reads
        assert ("b", False) in flow.reads

    def test_terminated_branch_does_not_dilute(self):
        text = (
            "if cond:\n"
            "    raise ValueError\n"
            "else:\n"
            "    gen('a')\n"
            "read('a')\n"
        )
        flow, _ = self._run(text)
        assert flow.reads == [("a", True)]

    def test_loop_body_facts_survive_iterations(self):
        text = (
            "gen('a')\n"
            "for i in items:\n"
            "    read('a')\n"
        )
        flow, _ = self._run(text)
        assert set(flow.reads) == {("a", True)}

    def test_loop_killed_fact_unavailable_second_pass(self):
        text = (
            "gen('a')\n"
            "for a in items:\n"
            "    read('a')\n"
        )
        flow, _ = self._run(text)
        # The loop variable rebind kills 'a' for every later iteration.
        assert ("a", False) in flow.reads

    def test_except_handler_starts_clean(self):
        text = (
            "gen('a')\n"
            "try:\n"
            "    work()\n"
            "except ValueError:\n"
            "    read('a')\n"
        )
        flow, _ = self._run(text)
        assert flow.reads == [("a", False)]

    def test_break_state_joins_after_loop(self):
        text = (
            "gen('a')\n"
            "while cond:\n"
            "    del a\n"
            "    break\n"
            "read('a')\n"
        )
        flow, _ = self._run(text)
        assert flow.reads == [("a", False)]
