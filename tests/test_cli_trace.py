"""CLI trace export/import and ``simulate --trace``."""

from repro.cli import main
from repro.io import load_trace


class TestTraceExportImport:
    def test_export_then_import_round_trip(self, tmp_path, capsys):
        out = tmp_path / "isx.trace"
        code = main(
            [
                "trace",
                "export",
                "--machine",
                "skl",
                "--workload",
                "isx",
                "--accesses",
                "300",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        export_out = capsys.readouterr().out
        assert "sha256" in export_out
        assert out.exists()

        code = main(["trace", "import", str(out)])
        assert code == 0
        import_out = capsys.readouterr().out
        assert "count_local_keys" in import_out
        assert "verified" in import_out
        # Export and import report the same content digest.
        digest = export_out.split("sha256 ")[1].split()[0]
        assert digest in import_out

    def test_export_seed_changes_content(self, tmp_path, capsys):
        paths = []
        for seed in (1, 2):
            p = tmp_path / f"s{seed}.trace"
            main(
                [
                    "trace",
                    "export",
                    "--machine",
                    "skl",
                    "--workload",
                    "isx",
                    "--accesses",
                    "200",
                    "--seed",
                    str(seed),
                    "--out",
                    str(p),
                ]
            )
            paths.append(p)
        capsys.readouterr()
        a, b = (load_trace(p) for p in paths)
        assert a != b

    def test_import_unverified(self, tmp_path, capsys):
        out = tmp_path / "t.trace"
        main(
            [
                "trace",
                "export",
                "--machine",
                "skl",
                "--workload",
                "hpcg",
                "--accesses",
                "200",
                "--out",
                str(out),
                "--compress",
            ]
        )
        capsys.readouterr()
        assert main(["trace", "import", str(out), "--no-verify"]) == 0
        assert "unverified" in capsys.readouterr().out

    def test_import_missing_file_is_cli_error(self, tmp_path, capsys):
        code = main(["trace", "import", str(tmp_path / "nope.trace")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestSimulateFromFile:
    def test_simulate_trace_file(self, tmp_path, capsys):
        out = tmp_path / "isx.trace"
        main(
            [
                "trace",
                "export",
                "--machine",
                "knl",
                "--workload",
                "isx",
                "--accesses",
                "400",
                "--out",
                str(out),
            ]
        )
        capsys.readouterr()
        code = main(
            ["simulate", "--machine", "knl", "--trace", str(out)]
        )
        assert code == 0
        sim_out = capsys.readouterr().out
        assert "count_local_keys" in sim_out
        assert "2-core" in sim_out  # cores derived from the trace

    def test_simulate_requires_workload_or_trace(self, capsys):
        code = main(["simulate", "--machine", "skl"])
        assert code == 2
        assert "--workload or --trace" in capsys.readouterr().err
