"""fan_out semantics: ordering, worker counts, fallback, errors."""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.perf import fan_out, resolve_jobs


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom on 3")
    return x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-1)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs(None)


class TestFanOut:
    def test_serial_matches_plain_loop(self):
        items = list(range(10))
        assert fan_out(_square, items, jobs=1) == [x * x for x in items]

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_preserves_item_order(self, jobs):
        items = list(range(12))
        assert fan_out(_square, items, jobs=jobs) == [x * x for x in items]

    def test_empty_items(self):
        assert fan_out(_square, [], jobs=4) == []

    def test_single_item_runs_serially(self):
        assert fan_out(_square, [7], jobs=8) == [49]

    def test_generator_input_accepted(self):
        assert fan_out(_square, (x for x in range(4)), jobs=1) == [0, 1, 4, 9]

    def test_worker_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom on 3"):
            fan_out(_fail_on_three, [1, 2, 3, 4], jobs=1)

    def test_worker_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="boom on 3"):
            fan_out(_fail_on_three, [1, 2, 3, 4], jobs=2)

    def test_unpicklable_callable_falls_back_to_serial(self):
        # A closure cannot cross a process boundary; fan_out must warn
        # and still produce the right answer.
        offset = 10
        with pytest.warns(UserWarning, match="serially"):
            out = fan_out(lambda x: x + offset, [1, 2, 3], jobs=2)
        assert out == [11, 12, 13]


# -- PR 4: retries, timeouts, outcomes, fault tolerance ---------------------------

from repro.errors import RetryExhausted  # noqa: E402
from repro.perf.parallel import (  # noqa: E402
    MAX_JOBS,
    MAX_RETRIES,
    Err,
    Ok,
    fan_out_outcomes,
    resolve_retries,
    resolve_timeout_s,
)
from repro.resilience import FaultRule, configure_faults  # noqa: E402


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Fault-free baseline for this file, ambient spec restored after.

    This file asserts *exact* retry/exception semantics, so an ambient
    ``REPRO_FAULTS`` spec (the CI fault-injection leg) is parked before
    each test and restored — never popped — afterwards, keeping the rest
    of the suite's leg coverage intact and order-independent.
    """
    ambient = os.environ.get("REPRO_FAULTS")
    configure_faults(None)
    yield
    configure_faults(ambient)


class _FailNTimes:
    """Fails the first ``n`` calls, then succeeds (serial-path only)."""

    def __init__(self, n):
        self.n = n
        self.calls = 0

    def __call__(self, x):
        self.calls += 1
        if self.calls <= self.n:
            raise ValueError(f"transient #{self.calls}")
        return x


def _cache_miss_probe(x):
    """One guaranteed cache miss per call (counter-delta merge probe)."""
    from repro.perf.cache import get_cache

    get_cache().load(f"{x:064x}")
    return x


class TestResolveRetries:
    def test_default_is_zero(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert resolve_retries(None) == 0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "3")
        assert resolve_retries(None) == 3

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "3")
        assert resolve_retries(1) == 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_retries(-1)

    def test_absurd_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_retries(MAX_RETRIES + 1)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "lots")
        with pytest.raises(ConfigurationError):
            resolve_retries(None)


class TestResolveTimeout:
    def test_default_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIMEOUT_S", raising=False)
        assert resolve_timeout_s(None) is None

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT_S", "2.5")
        assert resolve_timeout_s(None) == 2.5

    def test_zero_means_no_timeout(self):
        assert resolve_timeout_s(0) is None

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_timeout_s(-1.0)

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_timeout_s(float("nan"))
        with pytest.raises(ConfigurationError):
            resolve_timeout_s(float("inf"))

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT_S", "soon")
        with pytest.raises(ConfigurationError):
            resolve_timeout_s(None)


class TestJobsCeiling:
    def test_absurd_worker_count_rejected(self):
        with pytest.raises(ConfigurationError, match="absurd"):
            resolve_jobs(MAX_JOBS + 1)

    def test_bad_env_error_chains_cause(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError) as info:
            resolve_jobs(None)
        assert isinstance(info.value.__cause__, ValueError)


class TestOutcomes:
    def test_all_ok(self):
        outcomes = fan_out_outcomes(_square, [2, 3], jobs=1)
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [4, 9]
        assert [o.index for o in outcomes] == [0, 1]
        assert all(o.attempts == 1 for o in outcomes)

    def test_failure_captured_not_raised(self):
        outcomes = fan_out_outcomes(_fail_on_three, [1, 3], jobs=1)
        ok, err = outcomes
        assert isinstance(ok, Ok) and ok.value == 1
        assert isinstance(err, Err) and not err.ok
        assert isinstance(err.exception, ValueError)
        assert err.attempts == 1

    def test_single_attempt_err_reraises_original(self):
        (err,) = fan_out_outcomes(_fail_on_three, [3], jobs=1)
        with pytest.raises(ValueError, match="boom on 3"):
            err.reraise()

    def test_exhausted_err_reraises_retry_exhausted(self):
        (err,) = fan_out_outcomes(
            _fail_on_three, [3], jobs=1, retries=2, backoff_base_s=0.0
        )
        assert err.attempts == 3
        with pytest.raises(RetryExhausted) as info:
            err.reraise()
        assert isinstance(info.value.__cause__, ValueError)


class TestRetrySemantics:
    def test_transient_failure_recovered_within_budget(self):
        func = _FailNTimes(2)
        (outcome,) = fan_out_outcomes(
            func, [7], jobs=1, retries=2, backoff_base_s=0.0
        )
        assert outcome.ok and outcome.value == 7
        assert outcome.attempts == 3
        assert func.calls == 3

    def test_zero_retries_fails_immediately(self):
        func = _FailNTimes(1)
        (outcome,) = fan_out_outcomes(func, [7], jobs=1, backoff_base_s=0.0)
        assert not outcome.ok
        assert func.calls == 1

    def test_task_exception_budget_is_exact(self):
        # Deterministic task failures must NOT get the infrastructure
        # retry allowance: retries=1 means exactly 2 calls.
        func = _FailNTimes(10)
        (outcome,) = fan_out_outcomes(
            func, [7], jobs=1, retries=1, backoff_base_s=0.0
        )
        assert not outcome.ok
        assert func.calls == 2

    def test_on_error_skip_keeps_partial_results(self):
        out = fan_out(_fail_on_three, [1, 2, 3, 4], jobs=1, on_error="skip")
        assert out == [1, 2, 4]

    def test_on_error_retry_implies_budget_then_raises(self):
        with pytest.raises(RetryExhausted, match="_fail_on_three"):
            fan_out(_fail_on_three, [3], jobs=1, on_error="retry")

    def test_on_error_retry_recovers_transients(self):
        assert fan_out(_FailNTimes(2), [7], jobs=1, on_error="retry") == [7]

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ConfigurationError, match="on_error"):
            fan_out(_square, [1], jobs=1, on_error="explode")


def _find_fault_seed(kind, label, n_items, p, max_attempts):
    """A seed where some first attempt fires but recovery is guaranteed.

    Guaranteed means: some attempt level ``a < max_attempts`` exists at
    which NO item fires.  That covers the worst schedule for a broken
    pool — where unfinished items are charged in lockstep and a level
    with any firing item can break the pool for everyone — as well as
    the per-item case (hangs charge only the hung task).  Purely a
    function of the hash, so the search — and therefore the whole test —
    is deterministic.
    """
    for seed in range(500):
        rule = FaultRule(kind=kind, p=p, seed=seed)
        fired_first = any(
            rule.fires(f"{label}:{i}:a0") for i in range(n_items)
        )
        clear_level = any(
            not any(
                rule.fires(f"{label}:{i}:a{a}") for i in range(n_items)
            )
            for a in range(max_attempts)
        )
        if fired_first and clear_level:
            return seed
    raise AssertionError("no suitable fault seed in range")


class TestInjectedWorkerFaults:
    def test_worker_kill_is_recovered(self):
        # A killed worker breaks the pool; fan_out must resubmit the
        # unfinished items and still return every result in order.
        items = list(range(4))
        seed = _find_fault_seed("worker_kill", "_square", len(items), 0.4, 3)
        configure_faults(f"worker_kill:p=0.4,seed={seed}")
        out = fan_out(_square, items, jobs=2)
        assert out == [x * x for x in items]

    def test_worker_kill_recovery_is_deterministic(self):
        # Fault FIRING is a pure function of (seed, key), so repeated
        # runs must recover the same values.  Attempt counts are NOT
        # compared: which tasks a broken round charges depends on how
        # far the pool got before dying, which is scheduling-dependent.
        items = list(range(4))
        seed = _find_fault_seed("worker_kill", "_square", len(items), 0.4, 3)
        configure_faults(f"worker_kill:p=0.4,seed={seed}")
        first = fan_out_outcomes(_square, items, jobs=2)
        second = fan_out_outcomes(_square, items, jobs=2)
        assert all(o.ok for o in first)
        assert [o.value for o in first] == [o.value for o in second]

    def test_task_hang_times_out_and_recovers(self):
        # The hung attempt exceeds timeout_s; the retry re-rolls the
        # fault key and completes.  Without the timeout this test would
        # block for the full 30 s hang.
        items = [0, 1]
        seed = _find_fault_seed("task_hang", "_square", len(items), 0.5, 3)
        configure_faults(f"task_hang:p=0.5,seed={seed},s=30")
        out = fan_out(_square, items, jobs=2, timeout_s=0.5)
        assert out == [0, 1]

    def test_counter_deltas_survive_worker_failure(self):
        # Each successful call performs exactly one cache miss inside a
        # worker; merged deltas must equal the item count even when
        # killed attempts (which never reach the probe) are retried.
        from repro.perf.cache import get_cache

        items = list(range(4))
        label = "_cache_miss_probe"
        seed = _find_fault_seed("worker_kill", label, len(items), 0.4, 3)
        configure_faults(f"worker_kill:p=0.4,seed={seed}")
        before = get_cache().counters.snapshot()
        out = fan_out(_cache_miss_probe, items, jobs=2)
        delta = get_cache().counters.diff(before)
        assert out == items
        assert delta.misses == len(items)


class TestSerialFallback:
    def test_pool_that_cannot_start_falls_back(self, monkeypatch):
        # Sandboxes without working semaphores raise OSError at pool
        # construction; results must still arrive, serially, with a
        # warning.
        import repro.perf.parallel as parallel_module

        class _NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("semaphores unavailable")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", _NoPool)
        with pytest.warns(UserWarning, match="serially"):
            out = fan_out(_square, [1, 2, 3], jobs=2)
        assert out == [1, 4, 9]

    def test_fallback_preserves_retry_semantics(self, monkeypatch):
        import repro.perf.parallel as parallel_module

        class _NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("semaphores unavailable")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", _NoPool)
        with pytest.warns(UserWarning, match="serially"):
            with pytest.raises(ValueError, match="boom on 3"):
                fan_out(_fail_on_three, [1, 2, 3], jobs=2)
