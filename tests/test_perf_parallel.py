"""fan_out semantics: ordering, worker counts, fallback, errors."""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.perf import fan_out, resolve_jobs


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom on 3")
    return x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-1)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs(None)


class TestFanOut:
    def test_serial_matches_plain_loop(self):
        items = list(range(10))
        assert fan_out(_square, items, jobs=1) == [x * x for x in items]

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_preserves_item_order(self, jobs):
        items = list(range(12))
        assert fan_out(_square, items, jobs=jobs) == [x * x for x in items]

    def test_empty_items(self):
        assert fan_out(_square, [], jobs=4) == []

    def test_single_item_runs_serially(self):
        assert fan_out(_square, [7], jobs=8) == [49]

    def test_generator_input_accepted(self):
        assert fan_out(_square, (x for x in range(4)), jobs=1) == [0, 1, 4, 9]

    def test_worker_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom on 3"):
            fan_out(_fail_on_three, [1, 2, 3, 4], jobs=1)

    def test_worker_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="boom on 3"):
            fan_out(_fail_on_three, [1, 2, 3, 4], jobs=2)

    def test_unpicklable_callable_falls_back_to_serial(self):
        # A closure cannot cross a process boundary; fan_out must warn
        # and still produce the right answer.
        offset = 10
        with pytest.warns(UserWarning, match="serially"):
            out = fan_out(lambda x: x + offset, [1, 2, 3], jobs=2)
        assert out == [11, 12, 13]
