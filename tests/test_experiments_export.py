"""JSON export of the reproduction results."""

import json

import pytest

from repro.experiments.export import (
    export_json,
    figures_to_dict,
    full_reproduction_dict,
    table_to_dict,
)
from repro.experiments.harness import reproduce_table


class TestTableExport:
    @pytest.fixture(scope="class")
    def isx_dict(self):
        return table_to_dict(reproduce_table("isx"))

    def test_structure(self, isx_dict):
        assert isx_dict["workload"] == "isx"
        assert isx_dict["table"] == "IV"
        assert isx_dict["rows_total"] == 9
        assert isx_dict["rows_ok"] == 9

    def test_row_contents(self, isx_dict):
        row = isx_dict["rows"][0]
        assert row["machine"] == "skl"
        assert row["measured"]["n_avg"] == pytest.approx(10.0, abs=0.3)
        assert row["paper"]["n_avg"] == 10.1
        assert row["checks"]["all_ok"]

    def test_json_serializable(self, isx_dict):
        json.dumps(isx_dict)  # no TypeError


class TestFullExport:
    @pytest.fixture(scope="class")
    def full(self):
        return full_reproduction_dict()

    def test_all_tables_present(self, full):
        assert set(full["tables"]) == {
            "isx",
            "hpcg",
            "pennant",
            "comd",
            "minighost",
            "snap",
        }

    def test_figures_present(self, full):
        assert full["figures"]["figure1"]["unexplained_disagreements"] == 0
        assert full["figures"]["figure2"]["l1_ceiling_bw_gbs"] == pytest.approx(
            262, abs=10
        )
        assert full["figures"]["figure2"]["series"]

    def test_export_to_file(self, tmp_path):
        path = tmp_path / "repro.json"
        text = export_json(str(path))
        doc = json.loads(path.read_text())
        assert doc == json.loads(text)
        assert "tables" in doc

    def test_figures_to_dict_shape(self):
        figures = figures_to_dict()
        assert figures["figure1"]["accuracy"] == 1.0


class TestCliJsonFlag:
    def test_reproduce_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "out.json"
        assert main(["reproduce", "--json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["tables"]["snap"]["rows_ok"] == 7
