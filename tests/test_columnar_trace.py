"""Columnar (structure-of-arrays) trace layer: losslessness and identity.

The tentpole contract of :mod:`repro.sim.coltrace`: the columnar
representation is a pure change of layout.  Hypothesis drives random
traces through (a) the object<->columnar round trip, (b) the shared
content digest, and (c) full simulations on both representations —
which must agree bit for bit (`SimStats.fingerprint`).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.machines import get_machine
from repro.sim import SimConfig, run_trace
from repro.sim.coltrace import (
    AccessColumns,
    ColumnarThreadTrace,
    ColumnarTrace,
    as_columnar,
    as_object_trace,
    concat_columns,
    interleave_columns,
    trace_digest,
)
from repro.sim.trace import Access, AccessKind, ThreadTrace, Trace

KINDS = list(AccessKind)


@st.composite
def object_traces(draw, max_threads=3, max_accesses=40):
    n_threads = draw(st.integers(1, max_threads))
    threads = []
    for t in range(n_threads):
        n = draw(st.integers(1, max_accesses))
        accesses = tuple(
            Access(
                draw(st.integers(0, 2**40)) * 64,
                draw(st.sampled_from(KINDS)),
                draw(
                    st.floats(
                        0.0, 500.0, allow_nan=False, allow_infinity=False
                    )
                ),
            )
            for _ in range(n)
        )
        threads.append(ThreadTrace(t, accesses))
    return Trace(tuple(threads), routine="prop", line_bytes=64)


class TestRoundTrip:
    @given(trace=object_traces())
    @settings(max_examples=50, deadline=None)
    def test_object_columnar_object_is_lossless(self, trace):
        assert ColumnarTrace.from_trace(trace).to_trace() == trace

    @given(trace=object_traces())
    @settings(max_examples=50, deadline=None)
    def test_digest_agrees_across_representations(self, trace):
        assert trace_digest(trace) == trace_digest(ColumnarTrace.from_trace(trace))

    @given(trace=object_traces())
    @settings(max_examples=25, deadline=None)
    def test_lazy_access_view_matches_source(self, trace):
        col = ColumnarTrace.from_trace(trace)
        for obj_t, col_t in zip(trace.threads, col.threads):
            assert col_t.accesses == obj_t.accesses
            assert col_t.demand_count == obj_t.demand_count
            assert len(col_t) == len(obj_t)

    def test_as_helpers_are_idempotent(self):
        trace = Trace(
            (ThreadTrace(0, (Access(0, AccessKind.LOAD, 1.0),)),),
            routine="r",
        )
        col = as_columnar(trace)
        assert as_columnar(col) is col
        obj = as_object_trace(col)
        assert as_object_trace(obj) is obj
        assert obj == trace


class TestFingerprintIdentity:
    @given(trace=object_traces(max_threads=2, max_accesses=60))
    @settings(max_examples=8, deadline=None)
    def test_simulation_identical_on_both_paths(self, trace):
        config = SimConfig(machine=get_machine("skl"), sim_cores=len(trace.threads))
        obj_stats = run_trace(trace, config)
        col_stats = run_trace(ColumnarTrace.from_trace(trace), config)
        assert obj_stats.fingerprint() == col_stats.fingerprint()


class TestCombinators:
    @given(
        major_n=st.integers(0, 40),
        minor_n=st.integers(0, 12),
        period=st.integers(1, 9),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleave_matches_reference_loop(self, major_n, minor_n, period):
        rng = np.random.default_rng(5)
        major = AccessColumns(
            rng.integers(0, 1000, major_n) * 64,
            np.zeros(major_n, dtype=np.uint8),
            np.full(major_n, 2.0),
        )
        minor = AccessColumns(
            rng.integers(0, 1000, minor_n) * 64,
            np.full(minor_n, 3, dtype=np.uint8),
            np.full(minor_n, 0.5),
        )
        # The historical per-object merge loop from the workload modules.
        expected, pending = [], list(minor)
        for i, access in enumerate(major, start=1):
            expected.append(access)
            if pending and i % period == 0:
                expected.append(pending.pop(0))
        expected.extend(pending)
        merged = interleave_columns(major, minor, period=period)
        assert list(merged) == expected

    def test_interleave_rejects_bad_period(self):
        with pytest.raises(TraceError):
            interleave_columns(AccessColumns.empty(), AccessColumns.empty(), period=0)

    def test_concat_preserves_order(self):
        a = AccessColumns.from_accesses([Access(0, AccessKind.LOAD, 1.0)])
        b = AccessColumns.from_accesses([Access(64, AccessKind.STORE, 2.0)])
        assert list(concat_columns([a, b])) == list(a) + list(b)
        assert len(concat_columns([])) == 0

    def test_slicing_returns_columns(self):
        run = AccessColumns.from_accesses(
            [Access(i * 64, AccessKind.LOAD, 1.0) for i in range(10)]
        )
        head = run[:3]
        assert isinstance(head, AccessColumns)
        assert list(head) == list(run)[:3]
        assert run[4] == Access(256, AccessKind.LOAD, 1.0)


class TestValidation:
    def test_column_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            AccessColumns(
                np.zeros(3, np.uint64), np.zeros(2, np.uint8), np.zeros(3)
            )

    def test_bad_kind_code_rejected(self):
        with pytest.raises(TraceError):
            AccessColumns(
                np.zeros(1, np.uint64),
                np.array([7], dtype=np.uint8),
                np.zeros(1),
            )

    def test_negative_gap_rejected(self):
        with pytest.raises(TraceError):
            AccessColumns(
                np.zeros(1, np.uint64),
                np.zeros(1, np.uint8),
                np.array([-1.0]),
            )

    def test_duplicate_thread_ids_rejected(self):
        t = ColumnarThreadTrace(
            0, np.zeros(1, np.uint64), np.zeros(1, np.uint8), np.ones(1)
        )
        with pytest.raises(TraceError):
            ColumnarTrace((t, t))

    def test_thread_arrays_are_read_only(self):
        t = ColumnarThreadTrace(
            0, np.zeros(2, np.uint64), np.zeros(2, np.uint8), np.ones(2)
        )
        with pytest.raises(ValueError):
            t.addr[0] = 1


class TestCachedCounts:
    def test_counts_match_recomputation(self):
        trace = Trace(
            (
                ThreadTrace(
                    0,
                    (
                        Access(0, AccessKind.LOAD, 1.0),
                        Access(64, AccessKind.SWPF_L1, 0.5),
                        Access(128, AccessKind.STORE, 1.0),
                    ),
                ),
                ThreadTrace(1, (Access(192, AccessKind.SWPF_L2, 0.5),)),
            ),
            routine="r",
        )
        col = ColumnarTrace.from_trace(trace)
        for t in (trace, col):
            assert t.total_accesses == 4
            assert t.total_demand == 2
        assert trace.threads[0].demand_count == 2
        assert col.threads[1].demand_count == 0
