"""Batch-stepping fast path: bit-exact equivalence with the event engine.

The contract under test (see docs/PERFORMANCE.md): with
``SimConfig.batch=True`` the simulator may retire provable L1-hit runs
in vectorized steps, and every *semantic* observable — the
:meth:`~repro.sim.stats.SimStats.fingerprint` — is bit-identical to the
pure event-engine run.  The property is exercised three ways:

* hypothesis-generated traces across machines, window sizes, SMT,
  hardware-prefetch, and TLB settings;
* the six paper workloads on all three modeled machines;
* element-wise unit properties of the vectorized probe surfaces
  (``probe_batch``/``touch_batch``/``observe_batch``) against their
  scalar counterparts, including aliasing within a batch.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import get_machine
from repro.sim import SimConfig, run_trace
from repro.sim.cache import CacheArray
from repro.sim.prefetcher import StreamPrefetcher
from repro.sim.tlb import Tlb
from repro.sim.trace import Access, AccessKind, ThreadTrace, Trace
from repro.workloads import get_workload
from repro.workloads.base import TraceSpec

MACHINES = ("skl", "knl", "a64fx")


def _mixed_trace(
    seed: int,
    n: int,
    *,
    threads: int = 2,
    line_bytes: int = 64,
    hot_lines: int = 200,
    miss_rate: float = 0.05,
    store_rate: float = 0.2,
    prefetch_rate: float = 0.0,
) -> Trace:
    """Hot-footprint trace with tunable cold misses, stores, prefetches."""
    rng = random.Random(seed)
    kinds = [AccessKind.LOAD, AccessKind.STORE, AccessKind.SWPF_L2]
    thread_traces = []
    for t in range(threads):
        accesses = []
        for _ in range(n):
            if rng.random() < miss_rate:
                addr = rng.randrange(1 << 22) * line_bytes
            else:
                addr = rng.randrange(hot_lines) * line_bytes
            addr += t * (1 << 32)
            r = rng.random()
            if r < prefetch_rate:
                kind = kinds[2]
            elif r < prefetch_rate + store_rate:
                kind = kinds[1]
            else:
                kind = kinds[0]
            accesses.append(Access(addr, kind, float(rng.randrange(0, 14))))
        thread_traces.append(ThreadTrace(thread_id=t, accesses=tuple(accesses)))
    return Trace(
        threads=tuple(thread_traces), routine="batch-prop", line_bytes=line_bytes
    )


def _fingerprints(trace, **config_kwargs):
    event = run_trace(trace, SimConfig(batch=False, **config_kwargs))
    batch = run_trace(trace, SimConfig(batch=True, **config_kwargs))
    return event, batch


class TestFingerprintEquivalence:
    """Batch and event paths must be semantically indistinguishable."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(100, 600),
        machine=st.sampled_from(MACHINES),
        window=st.integers(2, 24),
        miss_rate=st.sampled_from([0.0, 0.02, 0.3]),
        hw_prefetch=st.booleans(),
        tlb_entries=st.sampled_from([0, 32]),
    )
    def test_property_mixed_traces(
        self, seed, n, machine, window, miss_rate, hw_prefetch, tlb_entries
    ):
        m = get_machine(machine)
        trace = _mixed_trace(
            seed,
            n,
            line_bytes=m.line_bytes,
            miss_rate=miss_rate,
            prefetch_rate=0.05,
        )
        event, batch = _fingerprints(
            trace,
            machine=m,
            sim_cores=2,
            window_per_core=window,
            hw_prefetch=hw_prefetch,
            tlb_entries=tlb_entries,
        )
        assert event.fingerprint() == batch.fingerprint()

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**20), n=st.integers(100, 400))
    def test_property_smt(self, seed, n):
        """Under SMT the fast path must disengage, not diverge."""
        m = get_machine("skl")
        trace = _mixed_trace(seed, n, threads=2, miss_rate=0.02)
        event, batch = _fingerprints(
            trace,
            machine=m,
            sim_cores=1,
            threads_per_core=2,
            window_per_core=16,
        )
        assert event.fingerprint() == batch.fingerprint()
        assert batch.batch_accesses == 0

    @pytest.mark.parametrize("machine", MACHINES)
    @pytest.mark.parametrize(
        "workload", ["isx", "hpcg", "pennant", "comd", "minighost", "snap"]
    )
    def test_paper_workloads(self, machine, workload):
        m = get_machine(machine)
        trace = get_workload(workload).generate_trace(
            m, spec=TraceSpec(threads=2, accesses_per_thread=400)
        )
        event, batch = _fingerprints(trace, machine=m, sim_cores=2)
        assert event.fingerprint() == batch.fingerprint()

    def test_batch_path_engages_on_hot_loop(self):
        m = get_machine("skl")
        trace = _mixed_trace(3, 4000, miss_rate=0.0, store_rate=0.1)
        event, batch = _fingerprints(trace, machine=m, sim_cores=2)
        assert event.fingerprint() == batch.fingerprint()
        assert batch.batch_accesses > 1000
        assert event.batch_accesses == 0
        # Fewer engine events is the whole point of the fast path.
        assert batch.events_fired < event.events_fired / 2

    def test_fingerprint_excludes_batch_accesses(self):
        """batch_accesses is an execution observable, not a semantic one."""
        m = get_machine("skl")
        trace = _mixed_trace(4, 2000, miss_rate=0.0)
        stats = run_trace(trace, SimConfig(machine=m, sim_cores=2, batch=True))
        assert stats.batch_accesses > 0
        doc = stats.to_dict()
        assert "batch_accesses" in doc
        fp = stats.fingerprint()
        stats.batch_accesses = 0
        assert stats.fingerprint() == fp


def _addr_batches(draw_seed: int, n: int, spread: int, line_bytes: int):
    rng = np.random.default_rng(draw_seed)
    # Dense sampling forces aliasing within a batch.
    return (rng.integers(0, spread, n) * line_bytes).astype(np.uint64)


class TestCacheProbeSurface:
    """probe_batch/touch_batch agree element-wise with scalar access()."""

    def _warm_cache(self, seed: int, lines: int = 96):
        from repro.machines.spec import CacheSpec

        spec = CacheSpec(
            level=1, size_bytes=8192, line_bytes=64, mshrs=8, associativity=4
        )
        cache = CacheArray(spec, "L1-test")
        rng = np.random.default_rng(seed)
        for addr in (rng.integers(0, lines, 3 * lines) * 64).tolist():
            if not cache.access(addr):
                cache.fill(addr)
        return cache

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 300))
    def test_probe_batch_matches_sequential_probe(self, seed, n):
        cache = self._warm_cache(seed)
        addrs = _addr_batches(seed + 1, n, 160, 64)
        lines = cache.line_of_batch(addrs)
        got = cache.probe_batch(lines)
        expected = [cache.probe(int(line)) for line in lines.tolist()]
        assert got.tolist() == expected

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 300))
    def test_touch_batch_matches_sequential_access(self, seed, n):
        """Aggregate LRU/dirty replay == per-element access(), with aliasing."""
        batch_cache = self._warm_cache(seed)
        scalar_cache = self._warm_cache(seed)
        rng = np.random.default_rng(seed + 2)
        addrs = _addr_batches(seed + 1, n, 160, 64)
        lines = batch_cache.line_of_batch(addrs)
        writes = rng.random(n) < 0.3
        hits = batch_cache.probe_batch(lines)
        # Keep the verified all-hit prefix only (the fast-path contract).
        k = int(np.argmin(hits)) if not hits.all() else n
        if k == 0:
            return
        batch_cache.touch_batch(lines[:k], writes[:k])
        batch_cache.flush_batch()
        for line, write in zip(lines[:k].tolist(), writes[:k].tolist()):
            assert scalar_cache.access(int(line), write=bool(write))
        assert batch_cache._sets == scalar_cache._sets

    def test_touch_batch_deferred_replay_accumulates(self):
        """Multiple queued runs replay as one concatenated sequence."""
        batch_cache = self._warm_cache(7)
        scalar_cache = self._warm_cache(7)
        rng = np.random.default_rng(8)
        for chunk_seed in range(4):
            addrs = _addr_batches(chunk_seed, 64, 96, 64)
            lines = batch_cache.line_of_batch(addrs)
            hits = batch_cache.probe_batch(lines)
            k = int(np.argmin(hits)) if not hits.all() else len(hits)
            writes = rng.random(len(lines)) < 0.5
            batch_cache.touch_batch(lines[:k], writes[:k])
            for line, write in zip(lines[:k].tolist(), writes[:k].tolist()):
                assert scalar_cache.access(int(line), write=bool(write))
        # No explicit flush: the next scalar access must replay first.
        probe_line = int(lines[0])
        assert batch_cache.access(probe_line) == scalar_cache.access(probe_line)
        assert batch_cache._sets == scalar_cache._sets

    def test_touch_batch_rejects_non_resident(self):
        from repro.errors import SimulationError

        cache = self._warm_cache(11)
        foreign = np.array([(1 << 30)], dtype=np.uint64)
        cache.touch_batch(foreign, np.zeros(1, dtype=bool))
        with pytest.raises(SimulationError):
            cache.flush_batch()


class TestTlbProbeSurface:
    """Tlb.probe_batch/touch_batch agree with sequential access()."""

    def _warm_tlb(self, seed: int, entries: int = 48):
        tlb = Tlb(entries)
        rng = np.random.default_rng(seed)
        for page in rng.integers(0, 64, 200).tolist():
            tlb.access(page * 4096)
        return tlb

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 300))
    def test_probe_batch_matches_sequential(self, seed, n):
        tlb = self._warm_tlb(seed)
        rng = np.random.default_rng(seed + 1)
        addrs = (rng.integers(0, 96, n) * 4096 + rng.integers(0, 4096, n)).astype(
            np.uint64
        )
        got = tlb.probe_batch(addrs)
        resident = set(tlb._pages)
        expected = [int(a) // 4096 in resident for a in addrs.tolist()]
        assert got.tolist() == expected

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 300))
    def test_touch_batch_matches_sequential(self, seed, n):
        batch_tlb = self._warm_tlb(seed)
        scalar_tlb = self._warm_tlb(seed)
        rng = np.random.default_rng(seed + 1)
        addrs = (rng.integers(0, 96, n) * 4096).astype(np.uint64)
        hits = batch_tlb.probe_batch(addrs)
        k = int(np.argmin(hits)) if not hits.all() else n
        if k == 0:
            return
        batch_tlb.touch_batch(addrs[:k])
        batch_tlb.flush_batch()
        for addr in addrs[:k].tolist():
            assert scalar_tlb.access(int(addr))
        assert batch_tlb._pages == scalar_tlb._pages
        assert batch_tlb.stats.hits == scalar_tlb.stats.hits


class TestPrefetcherBatchObserve:
    """observe_batch replays the same table updates as sequential observe."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 200))
    def test_observe_batch_matches_sequential(self, seed, n):
        rng = np.random.default_rng(seed)
        batch_pf = StreamPrefetcher(64, degree=2, distance=4)
        scalar_pf = StreamPrefetcher(64, degree=2, distance=4)
        base = rng.integers(0, 1 << 20) * 64
        steps = rng.integers(-2, 3, n).astype(np.int64)
        lines = (base + np.maximum(np.cumsum(steps), 0) * 64).astype(np.uint64)
        batched = dict(batch_pf.observe_batch(lines))
        for i, line in enumerate(lines.tolist()):
            candidates = scalar_pf.observe(int(line))
            assert batched.get(i, []) == candidates
        assert batch_pf._streams.keys() == scalar_pf._streams.keys()
