"""Figures 1-2, the intro TMA critique, and the stall-migration validation."""

import pytest

from repro.experiments import (
    FIGURE2,
    reproduce_figure1,
    reproduce_figure2,
    reproduce_intro_snap,
    reproduce_latency_counter_demo,
    reproduce_stall_migration,
)


@pytest.fixture(scope="module")
def figure1():
    return reproduce_figure1()


@pytest.fixture(scope="module")
def figure2():
    return reproduce_figure2()


class TestFigure1:
    def test_covers_every_optimization_row(self, figure1):
        assert figure1.total >= 28

    def test_recipe_accuracy_is_total(self, figure1):
        assert figure1.unexplained_disagreements == 0
        assert figure1.accuracy == pytest.approx(1.0)

    def test_traces_carry_decision_path(self, figure1):
        trace = figure1.traces[0]
        assert trace.binding_level in (1, 2)
        assert 0 <= trace.occupancy_ratio < 3
        assert trace.status in ("headroom", "near_full", "full")

    def test_render(self, figure1):
        text = figure1.render()
        assert "accuracy" in text
        assert "isx" in text


class TestFigure2:
    def test_l1_ceiling_near_paper_256(self, figure2):
        assert figure2.l1_ceiling_bw_gbs == pytest.approx(
            FIGURE2.l1_ceiling_bw_gbs, rel=0.05
        )

    def test_roofs_match_paper(self, figure2):
        assert figure2.extended.roofline.peak_bw_gbs == FIGURE2.peak_bw_gbs
        assert figure2.extended.roofline.peak_gflops == pytest.approx(
            FIGURE2.peak_gflops, rel=0.01
        )

    def test_base_point_pinned_by_ceiling(self, figure2):
        """The paper's argument: classic roofline misleads, ceiling explains."""
        assert figure2.base_pinned_by_ceiling

    def test_optimized_point_breaks_ceiling(self, figure2):
        assert figure2.optimized_breaks_ceiling

    def test_series_extended_bound_below_classic(self, figure2):
        for _, classic, extended in figure2.series:
            assert extended <= classic + 1e-9

    def test_render(self, figure2):
        assert "L1-MSHR ceiling" in figure2.render()


class TestIntroSnap:
    @pytest.fixture(scope="class")
    def intro(self):
        return reproduce_intro_snap(accesses_per_thread=2000)

    def test_tma_split_is_unclear(self, intro):
        """Neither bandwidth- nor latency-bound dominates (paper: 27/23)."""
        assert intro.tma_guidance_is_unclear

    def test_tma_latency_misleading(self, intro):
        assert intro.tma_latency_misleading

    def test_mlp_guidance_actionable(self, intro):
        assert intro.mlp_guidance_is_actionable
        assert not intro.mlp_report.decision.stop

    def test_render(self, intro):
        text = intro.render()
        assert "TMA" in text and "dim3_sweep" in text


class TestLatencyCounterDemo:
    @pytest.fixture(scope="class")
    def demo(self):
        return reproduce_latency_counter_demo(accesses_per_thread=2000)

    def test_streaming_underreports(self, demo):
        """hpcg: counter says ~hit latency, true is ~378 cycles."""
        assert demo.streaming_underreports
        assert demo.streaming_true_latency_cycles > 200

    def test_random_overreports(self, demo):
        """ISx: most loads binned above 512 cycles."""
        assert demo.random_overreports

    def test_render(self, demo):
        assert "under-report" in demo.render()


class TestStallMigration:
    @pytest.mark.parametrize("machine", ["knl", "a64fx"])
    def test_bottleneck_migrates(self, machine):
        result = reproduce_stall_migration(machine, accesses_per_thread=3000)
        assert result.base_l1_full_fraction > 0.5
        assert result.bottleneck_migrated
        assert result.bandwidth_improved

    def test_l2_occupancy_reaches_paper_range(self):
        """KNL optimized ISx: L2 occupancy in the ~20s (paper n=20)."""
        result = reproduce_stall_migration("knl", accesses_per_thread=3000)
        assert result.prefetched_l2_occupancy > 15
