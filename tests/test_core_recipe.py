"""The Figure-1 recipe engine: every branch of the flowchart."""

import pytest

from repro.core import (
    AccessPattern,
    Benefit,
    Classification,
    MlpCalculator,
    OccupancyStatus,
    OptimizationKind,
    Recipe,
    RecipeContext,
)


def _classify(pattern, pf=0.0):
    return Classification(pattern=pattern, prefetch_fraction=pf, rationale="test")


def _decide(machine, bw_gbs, pattern, context=None):
    mlp = MlpCalculator(machine).calculate_gbs(bw_gbs)
    return Recipe(machine).decide(mlp, _classify(pattern), context)


class TestBindingLevel:
    def test_random_binds_l1(self, skl):
        decision = _decide(skl, 50.0, AccessPattern.RANDOM)
        assert decision.binding_level == 1
        assert decision.mshr_limit == 10

    def test_streaming_binds_l2(self, skl):
        decision = _decide(skl, 50.0, AccessPattern.STREAMING)
        assert decision.binding_level == 2
        assert decision.mshr_limit == 16

    def test_override(self, skl):
        ctx = RecipeContext(binding_level_override=2)
        decision = _decide(skl, 50.0, AccessPattern.RANDOM, ctx)
        assert decision.binding_level == 2


class TestIsxSklScenario:
    """Table IV on SKL: full L1 MSHRQ + saturated bandwidth -> stop."""

    def test_stop_verdict(self, skl):
        decision = _decide(skl, 106.9, AccessPattern.RANDOM)
        assert decision.status is OccupancyStatus.FULL
        assert decision.bandwidth_saturated
        assert decision.stop
        assert decision.benefit_of(OptimizationKind.VECTORIZATION) is Benefit.NONE
        assert decision.benefit_of(OptimizationKind.SMT) is Benefit.NONE


class TestIsxKnlScenario:
    """Table IV on KNL: near-full L1 -> the L2-prefetch unlock."""

    def test_l2_prefetch_is_top_recommendation(self, knl):
        ctx = RecipeContext(
            applied=frozenset({OptimizationKind.VECTORIZATION, OptimizationKind.SMT}),
            smt_ways_used=2,
        )
        decision = _decide(knl, 253.0, AccessPattern.RANDOM, ctx)
        assert decision.status in (OccupancyStatus.NEAR_FULL, OccupancyStatus.FULL)
        top = decision.top_recommendation()
        assert top is not None
        assert top.kind is OptimizationKind.SW_PREFETCH_L2
        assert top.benefit is Benefit.SIGNIFICANT

    def test_l2_prefetch_not_offered_twice(self, knl):
        ctx = RecipeContext(
            applied=frozenset({OptimizationKind.SW_PREFETCH_L2}), smt_ways_used=2
        )
        decision = _decide(knl, 344.0, AccessPattern.RANDOM, ctx)
        assert decision.benefit_of(OptimizationKind.SW_PREFETCH_L2) is Benefit.NONE


class TestHeadroomScenario:
    """PENNANT/CoMD-like: low occupancy -> vectorize, then SMT."""

    def test_vectorization_significant(self, knl):
        decision = _decide(knl, 78.2, AccessPattern.RANDOM)
        assert decision.status is OccupancyStatus.HEADROOM
        assert decision.benefit_of(OptimizationKind.VECTORIZATION) is Benefit.SIGNIFICANT
        assert decision.benefit_of(OptimizationKind.SMT) is Benefit.SIGNIFICANT
        assert not decision.stop

    def test_unroll_and_jam_at_very_low_occupancy(self, skl):
        """Paper III-C: low occupancy implies cache residency -> register
        tiling (dgemm)."""
        decision = _decide(skl, 3.19, AccessPattern.MIXED)
        assert decision.benefit_of(OptimizationKind.UNROLL_AND_JAM) is Benefit.MODERATE


class TestBandwidthSaturation:
    """HPCG on SKL: headroom in the MSHRQ but bandwidth is the wall."""

    def test_mlp_increasers_fail_when_saturated(self, skl):
        decision = _decide(skl, 109.9, AccessPattern.STREAMING)
        assert decision.bandwidth_saturated
        assert decision.benefit_of(OptimizationKind.VECTORIZATION) is Benefit.NONE
        assert decision.benefit_of(OptimizationKind.LOOP_TILING) is Benefit.SIGNIFICANT


class TestHighBandwidthTiling:
    """MiniGhost: very high (but unsaturated) bandwidth -> tiling."""

    def test_tiling_moderate_at_high_bw(self, knl):
        decision = _decide(knl, 232.96, AccessPattern.STREAMING)
        assert not decision.bandwidth_saturated
        benefit = decision.benefit_of(OptimizationKind.LOOP_TILING)
        assert benefit.expects_speedup

    def test_tiling_marginal_at_low_bw(self, knl):
        decision = _decide(knl, 50.0, AccessPattern.STREAMING)
        assert not decision.benefit_of(OptimizationKind.LOOP_TILING).expects_speedup


class TestStreamTrackerLimit:
    """HPCG on KNL: 4-way SMT overflows the 16-stream prefetch tracker."""

    def test_smt4_degraded_for_streaming(self, knl):
        ctx = RecipeContext(
            applied=frozenset({OptimizationKind.VECTORIZATION, OptimizationKind.SMT}),
            smt_ways_used=2,
        )
        decision = _decide(knl, 296.0, AccessPattern.STREAMING, ctx)
        assert decision.benefit_of(OptimizationKind.SMT) is Benefit.MARGINAL
        assert any("stream" in note for note in decision.notes)

    def test_smt2_not_degraded(self, knl):
        decision = _decide(knl, 205.0, AccessPattern.STREAMING)
        assert decision.benefit_of(OptimizationKind.SMT) is Benefit.SIGNIFICANT

    def test_random_pattern_unaffected_by_tracker(self, knl):
        ctx = RecipeContext(smt_ways_used=2, applied=frozenset({OptimizationKind.SMT}))
        decision = _decide(knl, 100.0, AccessPattern.RANDOM, ctx)
        assert decision.benefit_of(OptimizationKind.SMT) is Benefit.SIGNIFICANT


class TestNoSmtMachine:
    def test_a64fx_never_recommends_smt(self, a64fx):
        decision = _decide(a64fx, 271.0, AccessPattern.STREAMING)
        assert decision.benefit_of(OptimizationKind.SMT) is Benefit.NONE
        assert any("no SMT" in note for note in decision.notes)


class TestAggressivePrefetcherDamping:
    """SNAP on SKL: software prefetch gains only 1%."""

    def test_swpf_marginal_on_skl(self, skl):
        decision = _decide(skl, 58.2, AccessPattern.MIXED)
        assert decision.benefit_of(OptimizationKind.SW_PREFETCH_L1) is Benefit.MARGINAL

    def test_swpf_moderate_on_knl(self, knl):
        decision = _decide(knl, 122.9, AccessPattern.MIXED)
        assert decision.benefit_of(OptimizationKind.SW_PREFETCH_L1) is Benefit.MODERATE


class TestDecisionStructure:
    def test_recommendations_sorted_by_benefit(self, knl):
        decision = _decide(knl, 78.2, AccessPattern.RANDOM)
        values = [r.benefit.value for r in decision.recommendations]
        assert values == sorted(values, reverse=True)

    def test_notes_mention_binding_queue(self, skl):
        decision = _decide(skl, 50.0, AccessPattern.RANDOM)
        assert any("L1" in note for note in decision.notes)

    def test_context_with_applied(self):
        ctx = RecipeContext().with_applied(OptimizationKind.VECTORIZATION)
        assert OptimizationKind.VECTORIZATION in ctx.applied
