"""Stream prefetcher: training, stream limits, random-blindness."""

import pytest

from repro.errors import SimulationError
from repro.sim import StreamPrefetcher


def _feed_stream(pf: StreamPrefetcher, start_line: int, count: int, line=64):
    """Feed a unit-stride line stream; return all prefetch candidates."""
    out = []
    for i in range(count):
        out.extend(pf.observe((start_line + i) * line))
    return out


class TestTraining:
    def test_needs_training_before_issuing(self):
        pf = StreamPrefetcher(64, train_threshold=2)
        assert pf.observe(0) == []
        assert pf.observe(64) == []  # first step: confidence 1

    def test_issues_after_training(self):
        pf = StreamPrefetcher(64, train_threshold=2, degree=2, distance=8)
        candidates = _feed_stream(pf, 0, 5)
        assert candidates  # stream detected
        # Prefetches run ahead of the demand stream.
        assert min(candidates) >= 8 * 64

    def test_descending_stream_detected(self):
        pf = StreamPrefetcher(64, train_threshold=2)
        out = []
        for i in range(60, 40, -1):
            out.extend(pf.observe(i * 64))
        assert out
        assert all(addr < 60 * 64 for addr in out)

    def test_random_accesses_never_trigger(self):
        """The ISx property: random pages defeat the prefetcher."""
        import random

        rng = random.Random(3)
        pf = StreamPrefetcher(64)
        out = []
        for _ in range(300):
            out.extend(pf.observe(rng.randrange(1 << 30) // 64 * 64))
        assert pf.issued <= 4  # essentially nothing

    def test_same_line_repeats_are_ignored(self):
        pf = StreamPrefetcher(64)
        for _ in range(10):
            assert pf.observe(0) == []


class TestStreamLimit:
    def test_tracks_limited_streams(self):
        """KNL's 16-stream tracker (paper Section IV-B)."""
        pf = StreamPrefetcher(64, max_streams=4)
        # Touch 8 distinct pages: only 4 stream slots exist.
        for page in range(8):
            pf.observe(page * 4096)
        assert pf.active_streams <= 4

    def test_stale_stream_evicted_for_new_one(self):
        pf = StreamPrefetcher(64, max_streams=2, train_threshold=2)
        _feed_stream(pf, 0, 4)  # page 0 live
        pf.observe(1 * 4096)  # page 1
        pf.observe(2 * 4096)  # page 2 evicts the stalest
        assert pf.active_streams == 2


class TestToggle:
    def test_disabled_prefetcher_is_silent(self):
        pf = StreamPrefetcher(64, enabled=False)
        assert _feed_stream(pf, 0, 20) == []
        assert pf.issued == 0


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            StreamPrefetcher(0)
        with pytest.raises(SimulationError):
            StreamPrefetcher(64, degree=0)

    def test_degree_controls_burst_size(self):
        pf = StreamPrefetcher(64, degree=4, train_threshold=2)
        candidates = []
        for i in range(3):
            candidates = pf.observe(i * 64) or candidates
        assert len(candidates) == 4
