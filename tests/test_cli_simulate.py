"""CLI simulate: the simulator-backed analysis from the command line."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_isx_base_run(self, capsys):
        code = main(
            [
                "simulate",
                "--machine",
                "knl",
                "--workload",
                "isx",
                "--accesses",
                "1500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "count_local_keys" in out
        assert "L1 MSHR occ" in out
        assert "random" in out  # classified from simulated counters

    def test_isx_with_l2_prefetch_shows_migration(self, capsys):
        main(
            [
                "simulate",
                "--machine",
                "knl",
                "--workload",
                "isx",
                "--steps",
                "l2_prefetch",
                "--accesses",
                "1500",
            ]
        )
        out = capsys.readouterr().out
        assert "prefetch fraction" in out
        # The L2 file is now the busy queue.
        assert "L2 MSHRQ binds" in out

    def test_snap_run(self, capsys):
        code = main(
            [
                "simulate",
                "--machine",
                "skl",
                "--workload",
                "snap",
                "--accesses",
                "1200",
            ]
        )
        assert code == 0
        assert "dim3_sweep" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--machine", "skl", "--workload", "linpack"])
