"""What-if sweep utilities (repro.core.sweep)."""

import pytest

from repro.core import (
    OccupancyStatus,
    demand_sweep,
    headroom_map,
    operating_curve,
    render_headroom_map,
    utilization_where_mshrs_bind,
)
from repro.errors import ConfigurationError
from repro.machines import get_machine, hbm3_concept


class TestOperatingCurve:
    def test_monotone_in_utilization(self, skl):
        curve = operating_curve(skl)
        n_values = [p.n_avg for p in curve]
        lat_values = [p.latency_ns for p in curve]
        assert n_values == sorted(n_values)
        assert lat_values == sorted(lat_values)

    def test_starts_at_zero(self, skl):
        curve = operating_curve(skl)
        assert curve[0].n_avg == 0.0
        assert curve[0].utilization == 0.0

    def test_top_is_achievable_by_default(self, skl):
        curve = operating_curve(skl)
        assert curve[-1].utilization == pytest.approx(
            skl.memory.achievable_fraction
        )

    def test_point_satisfies_equation2(self, skl):
        from repro.core import mlp_from_bandwidth

        point = operating_curve(skl, points=11)[5]
        n = mlp_from_bandwidth(
            point.bandwidth_gbs * 1e9, point.latency_ns, 64, cores=24
        )
        assert n == pytest.approx(point.n_avg, rel=1e-9)

    def test_validation(self, skl):
        with pytest.raises(ConfigurationError):
            operating_curve(skl, points=1)
        with pytest.raises(ConfigurationError):
            operating_curve(skl, max_utilization=1.5)


class TestMshrCrossing:
    def test_skl_l1_binds_below_achievable(self, skl):
        """10 L1 MSHRs/core fill around 80% utilization on SKL."""
        crossing = utilization_where_mshrs_bind(skl, 1)
        assert crossing is not None
        assert 0.6 < crossing < 0.87

    def test_skl_l2_never_binds(self, skl):
        """16 L2 MSHRs can feed SKL's memory: no crossing below
        achievable bandwidth - today's regime."""
        assert utilization_where_mshrs_bind(skl, 2) is None

    def test_hbm3_l2_binds_early(self):
        """The §IV-G regime: the crossing moves far below achievable."""
        crossing = utilization_where_mshrs_bind(hbm3_concept(), 2)
        assert crossing is not None
        assert crossing < 0.5


class TestDemandSweep:
    def test_bandwidth_monotone_and_saturating(self, knl):
        rows = demand_sweep(knl, 2, [1, 2, 4, 8, 16, 32, 64])
        bws = [bw for _, bw, _ in rows]
        assert bws == sorted(bws)
        # Demand beyond the 32-entry file adds nothing.
        assert bws[-1] == pytest.approx(bws[-2], rel=1e-6)


class TestHeadroomMap:
    def test_covers_all_patterns(self, skl):
        cells = headroom_map(skl)
        patterns = {c.pattern for c in cells}
        assert len(patterns) == 3

    def test_random_full_at_high_utilization(self, skl):
        cells = headroom_map(skl, utilizations=(0.85,))
        random_cell = next(c for c in cells if c.pattern.value == "random")
        assert random_cell.status is OccupancyStatus.FULL

    def test_low_utilization_is_headroom(self, skl):
        cells = headroom_map(skl, utilizations=(0.1,))
        for cell in cells:
            assert cell.status is OccupancyStatus.HEADROOM
            assert not cell.stop

    def test_render(self, skl):
        text = render_headroom_map(headroom_map(skl))
        assert "verdict" in text and "random" in text

    def test_validation(self, skl):
        with pytest.raises(ConfigurationError):
            headroom_map(skl, utilizations=(1.5,))
