"""Counter facade: vendor events, Table I visibility, sessions, CrayPat."""

import random

import pytest

from repro.counters import (
    CounterEvent,
    CounterSession,
    LATENCY_THRESHOLDS,
    RoutineProfile,
    Visibility,
    events_supported,
    table1_matrix,
    vendor_for_machine,
    visibility_for,
)
from repro.errors import CounterError, CounterUnavailableError
from repro.sim import SimConfig, run_trace, trace_from_addresses


@pytest.fixture(autouse=True)
def _fault_free_baseline():
    """This file asserts exact counter values: park any ambient
    ``REPRO_FAULTS`` spec (CI fault leg) and restore it afterwards."""
    import os

    from repro.resilience import configure_faults

    ambient = os.environ.get("REPRO_FAULTS")
    configure_faults(None)
    yield
    configure_faults(ambient)


def _run(machine, n=600, seed=5, routine="r"):
    rng = random.Random(seed)
    line = machine.line_bytes
    trace = trace_from_addresses(
        [[rng.randrange(1 << 22) * line for _ in range(n)] for _ in range(2)],
        line_bytes=line,
        gap_cycles=2.0,
        routine=routine,
    )
    return run_trace(trace, SimConfig(machine=machine, sim_cores=2, window_per_core=16))


class TestVendorEvents:
    def test_intel_exposes_l1_mshr_stalls(self):
        assert CounterEvent.L1_MSHR_FULL_STALLS in events_supported("intel-skl")

    def test_nobody_exposes_l2_mshr_stalls(self):
        """Paper Table I: L2-MSHRQ-full stalls are visible nowhere."""
        for vendor in ("intel-skl", "intel-knl", "amd", "cavium", "fujitsu"):
            assert CounterEvent.L2_MSHR_FULL_STALLS not in events_supported(vendor)

    def test_arm_vendors_lack_latency_counters(self):
        for vendor in ("cavium", "fujitsu"):
            assert CounterEvent.LOAD_LATENCY_GT_THRESHOLD not in events_supported(
                vendor
            )

    def test_all_vendors_expose_memory_traffic(self):
        """The portability premise: bandwidth counters exist everywhere."""
        for vendor in ("intel-skl", "intel-knl", "amd", "cavium", "fujitsu"):
            assert CounterEvent.MEM_READ_LINES in events_supported(vendor)


class TestTable1Matrix:
    def test_matrix_matches_paper(self):
        matrix = table1_matrix()
        assert matrix["Intel"].l1_mshrq_full_stalls is Visibility.YES
        assert matrix["Intel"].l2_mshrq_full_stalls is Visibility.NO
        assert matrix["Cavium"].stall_breakdown is Visibility.VERY_LIMITED
        assert matrix["Fujitsu"].memory_latency is Visibility.NO
        assert matrix["AMD"].memory_latency is Visibility.LIMITED

    def test_visibility_availability(self):
        assert Visibility.LIMITED.available
        assert not Visibility.NO.available

    def test_vendor_for_machine(self):
        assert vendor_for_machine("skl") == "intel-skl"
        assert vendor_for_machine("a64fx") == "fujitsu"

    def test_visibility_for_derives_from_events(self):
        row = visibility_for("fujitsu")
        assert row.l1_mshrq_full_stalls is Visibility.NO


class TestCounterSession:
    def test_read_supported_event(self, skl):
        stats = _run(skl)
        session = CounterSession(skl, stats)
        reading = session.read(CounterEvent.MEM_READ_LINES)
        assert reading.value > 0
        assert "OFFCORE" in reading.native.native_name

    def test_unsupported_event_raises(self, a64fx):
        stats = _run(a64fx)
        session = CounterSession(a64fx, stats)
        with pytest.raises(CounterUnavailableError):
            session.read(CounterEvent.LOAD_LATENCY_GT_THRESHOLD)

    def test_bandwidth_close_to_simulator_truth(self, skl):
        stats = _run(skl)
        session = CounterSession(skl, stats)
        true_bw = stats.bandwidth_bytes_per_s()
        assert session.bandwidth_bytes_per_s() == pytest.approx(true_bw, rel=0.15)

    def test_cycles_reading(self, skl):
        stats = _run(skl)
        session = CounterSession(skl, stats)
        cycles = session.read(CounterEvent.CPU_CYCLES).value
        assert cycles == pytest.approx(stats.elapsed_ns * 2.1, rel=1e-6)

    def test_latency_histogram_random_overreports(self, skl):
        """Paper: ISx showed 75% of loads binned above 512 cycles."""
        stats = _run(skl, n=1200)
        session = CounterSession(skl, stats)
        hist = session.load_latency_histogram()
        assert hist[512] > 0.5
        assert hist[4] >= hist[512]  # bins are cumulative-from-above

    def test_latency_histogram_needs_counter(self, a64fx):
        stats = _run(a64fx)
        with pytest.raises(CounterUnavailableError):
            CounterSession(a64fx, stats).load_latency_histogram()


class TestRoutineProfile:
    def test_per_routine_reports(self, skl):
        profile = RoutineProfile(skl)
        profile.add_run(_run(skl, routine="alpha"))
        profile.add_run(_run(skl, seed=9, routine="beta"))
        assert set(profile.routines) == {"alpha", "beta"}
        report = profile.report("alpha")
        assert report.bandwidth_gbs > 0
        assert "alpha" in profile.render()

    def test_duplicate_routine_rejected(self, skl):
        profile = RoutineProfile(skl)
        profile.add_run(_run(skl, routine="alpha"))
        with pytest.raises(CounterError):
            profile.add_run(_run(skl, routine="alpha"))

    def test_unknown_routine_rejected(self, skl):
        with pytest.raises(CounterError):
            RoutineProfile(skl).report("nope")

    def test_whole_program_average_between_extremes(self, skl):
        profile = RoutineProfile(skl)
        profile.add_run(_run(skl, n=400, routine="fast"))
        profile.add_run(_run(skl, n=800, seed=9, routine="slow"))
        whole = profile.whole_program_bandwidth()
        bws = [r.bandwidth_bytes for r in profile.reports()]
        assert min(bws) <= whole <= max(bws)


class TestDegradedReads:
    def test_clean_read_has_no_issues(self, skl):
        session = CounterSession(skl, _run(skl))
        reading, issues = session.read_with_quality(CounterEvent.MEM_READ_LINES)
        assert issues == []
        assert reading.value == session.read(CounterEvent.MEM_READ_LINES).value

    def test_unsupported_event_degrades_instead_of_raising(self, a64fx):
        session = CounterSession(a64fx, _run(a64fx))
        event = CounterEvent.LOAD_LATENCY_GT_THRESHOLD
        with pytest.raises(CounterUnavailableError):
            session.read(event)
        reading, issues = session.read_with_quality(event)
        assert reading is None
        assert [i.kind for i in issues] == ["missing-counter"]

    def test_injected_drop_loses_the_sample(self, skl):
        from repro.resilience import configure_faults

        session = CounterSession(skl, _run(skl))
        try:
            configure_faults("counter_drop:p=1,seed=0")
            reading, issues = session.read_with_quality(
                CounterEvent.MEM_READ_LINES
            )
        finally:
            configure_faults(None)
        assert reading is None
        assert [i.kind for i in issues] == ["dropped-sample"]

    def test_injected_nan_keeps_reading_with_issue(self, skl):
        import math

        from repro.resilience import configure_faults

        session = CounterSession(skl, _run(skl))
        try:
            configure_faults("counter_nan:p=1,seed=0")
            reading, issues = session.read_with_quality(
                CounterEvent.MEM_READ_LINES
            )
        finally:
            configure_faults(None)
        assert reading is not None and math.isnan(reading.value)
        assert [i.kind for i in issues] == ["nan-counter"]

    def test_degraded_bandwidth_clean_matches_strict(self, skl):
        session = CounterSession(skl, _run(skl))
        strict = session.bandwidth_bytes_per_s()
        degraded, issues = session.bandwidth_with_quality()
        assert issues == []
        assert degraded == strict

    def test_degraded_bandwidth_underestimates_on_drop(self, skl):
        from repro.resilience import configure_faults

        session = CounterSession(skl, _run(skl))
        strict = session.bandwidth_bytes_per_s()
        try:
            configure_faults("counter_drop:p=1,seed=0")
            degraded, issues = session.bandwidth_with_quality()
        finally:
            configure_faults(None)
        # Every contributing counter dropped -> traffic under-estimated
        # (multiplexing-gap semantics), never inflated.
        assert degraded < strict
        assert issues and all(i.kind == "dropped-sample" for i in issues)

    def test_issues_widen_the_error_budget(self, skl):
        from repro.core import quality_widened_errors
        from repro.resilience import configure_faults

        session = CounterSession(skl, _run(skl))
        try:
            configure_faults("counter_nan:p=1,seed=0")
            _, issues = session.bandwidth_with_quality()
        finally:
            configure_faults(None)
        widened_bw, _ = quality_widened_errors(issues)
        clean_bw, _ = quality_widened_errors([])
        assert widened_bw > clean_bw
