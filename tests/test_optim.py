"""Optimization transforms and pipelines."""

import pytest

from repro.core import AccessPattern, OptimizationKind
from repro.errors import OptimizationError
from repro.optim import (
    OptimizationPipeline,
    TransformEffect,
    WorkloadState,
    kind_of_step,
    label_of_step,
    lookup_effect,
    recipe_context_for,
    validate_sequence,
)


def _state(**overrides):
    defaults = dict(
        workload="w",
        machine_name="skl",
        routine="k",
        pattern=AccessPattern.RANDOM,
        random_fraction=0.9,
        binding_level=1,
        demand_mlp=5.0,
    )
    defaults.update(overrides)
    return WorkloadState(**defaults)


class TestStepMapping:
    def test_kind_of_step(self):
        assert kind_of_step("vectorize") is OptimizationKind.VECTORIZATION
        assert kind_of_step("smt2") is OptimizationKind.SMT
        assert kind_of_step("smt4") is OptimizationKind.SMT
        assert kind_of_step("l2_prefetch") is OptimizationKind.SW_PREFETCH_L2

    def test_unknown_step(self):
        with pytest.raises(OptimizationError):
            kind_of_step("quantum_tunneling")

    def test_labels(self):
        assert label_of_step("smt2") == "2-ht"
        assert label_of_step("loop_tiling") == "tiling"


class TestWorkloadState:
    def test_base_label(self):
        assert _state().label == "base"

    def test_paper_style_label(self):
        state = _state(applied=("vectorize", "smt2"))
        assert state.label == "+ vect, 2-ht"

    def test_applied_kinds(self):
        state = _state(applied=("vectorize", "smt2"))
        assert state.applied_kinds == {
            OptimizationKind.VECTORIZATION,
            OptimizationKind.SMT,
        }

    @pytest.mark.parametrize(
        "bad",
        [
            dict(binding_level=3),
            dict(demand_mlp=0.0),
            dict(traffic_factor=0.0),
            dict(smt_ways=0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(OptimizationError):
            _state(**bad)


class TestTransformEffect:
    def test_demand_factor(self):
        effect = TransformEffect(demand_factor=2.0)
        after = effect.apply(_state(), "vectorize")
        assert after.demand_mlp == pytest.approx(10.0)
        assert after.applied == ("vectorize",)

    def test_demand_absolute_overrides_factor(self):
        effect = TransformEffect(demand_factor=2.0, demand_absolute=20.0)
        assert effect.apply(_state(), "l2_prefetch").demand_mlp == 20.0

    def test_traffic_factor_compounds(self):
        effect = TransformEffect(traffic_factor=0.5)
        once = effect.apply(_state(), "loop_tiling")
        assert once.traffic_factor == pytest.approx(0.5)

    def test_binding_shift(self):
        effect = TransformEffect(shift_binding_to=2)
        assert effect.apply(_state(), "l2_prefetch").binding_level == 2

    def test_smt_ways(self):
        effect = TransformEffect(smt_ways=2)
        assert effect.apply(_state(), "smt2").smt_ways == 2

    def test_double_application_rejected(self):
        effect = TransformEffect()
        state = effect.apply(_state(), "vectorize")
        with pytest.raises(OptimizationError):
            effect.apply(state, "vectorize")

    def test_effect_validation(self):
        with pytest.raises(OptimizationError):
            TransformEffect(demand_factor=0.0)
        with pytest.raises(OptimizationError):
            TransformEffect(shift_binding_to=3)


class TestLookup:
    def test_machine_specific_wins(self):
        table = {
            "vectorize": TransformEffect(demand_factor=1.5),
            "vectorize@knl": TransformEffect(demand_factor=3.0),
        }
        assert lookup_effect(table, "vectorize", "knl").demand_factor == 3.0
        assert lookup_effect(table, "vectorize", "skl").demand_factor == 1.5

    def test_missing_effect_raises(self):
        with pytest.raises(OptimizationError):
            lookup_effect({}, "vectorize", "skl")


class TestPipeline:
    def test_run_returns_all_states(self):
        pipeline = OptimizationPipeline(
            {
                "vectorize": TransformEffect(demand_factor=2.0),
                "smt2": TransformEffect(demand_factor=1.5, smt_ways=2),
            }
        )
        states = pipeline.run(_state(), ["vectorize", "smt2"])
        assert [s.label for s in states] == ["base", "+ vect", "+ vect, 2-ht"]
        assert states[-1].demand_mlp == pytest.approx(15.0)

    def test_pairs(self):
        pipeline = OptimizationPipeline({"vectorize": TransformEffect()})
        pairs = list(pipeline.pairs(_state(), ["vectorize"]))
        assert len(pairs) == 1
        before, step, after = pairs[0]
        assert before.label == "base" and step == "vectorize"

    def test_recipe_context_for(self):
        state = _state(applied=("vectorize", "smt2"), smt_ways=2)
        ctx = recipe_context_for(state)
        assert OptimizationKind.VECTORIZATION in ctx.applied
        assert ctx.smt_ways_used == 2


class TestSequenceValidation:
    def test_valid_sequence(self):
        validate_sequence(["vectorize", "smt2", "smt4"])

    def test_duplicate_rejected(self):
        with pytest.raises(OptimizationError):
            validate_sequence(["vectorize", "vectorize"])

    def test_smt4_requires_smt2(self):
        with pytest.raises(OptimizationError):
            validate_sequence(["smt4"])

    def test_unknown_step_rejected(self):
        with pytest.raises(OptimizationError):
            validate_sequence(["warp_drive"])
