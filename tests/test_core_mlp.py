"""MlpCalculator: bandwidth + profile -> the paper's n_avg."""

import pytest

from repro.core import MlpCalculator
from repro.errors import ConfigurationError


class TestCalculation:
    def test_isx_skl_base_row(self, skl):
        """Table IV row 1 falls out of the calculator end to end."""
        result = MlpCalculator(skl).calculate_gbs(106.9)
        assert result.latency_ns == pytest.approx(145, abs=5)
        assert result.n_avg == pytest.approx(10.1, rel=0.05)
        assert result.utilization == pytest.approx(0.835, abs=0.01)

    def test_n_total_is_per_core_times_cores(self, skl):
        result = MlpCalculator(skl).calculate_gbs(50.0)
        assert result.n_total == pytest.approx(result.n_avg * 24)

    def test_a64fx_large_lines(self, a64fx):
        result = MlpCalculator(a64fx).calculate_gbs(649.0)
        assert result.line_bytes == 256
        assert result.n_avg == pytest.approx(9.92, rel=0.05)

    def test_zero_bandwidth(self, skl):
        result = MlpCalculator(skl).calculate(0.0)
        assert result.n_avg == 0.0
        assert result.latency_ns == pytest.approx(80.0)

    def test_summary_format(self, skl):
        text = MlpCalculator(skl).calculate_gbs(106.9).summary()
        assert "GB/s" in text and "n_avg" in text


class TestMeasuredProfile:
    def test_works_with_xmem_profile(self, skl, xmem_skl_profile):
        calc = MlpCalculator(skl, xmem_skl_profile)
        result = calc.calculate_gbs(90.0)
        assert result.n_avg > 0

    def test_profile_machine_mismatch_rejected(self, knl, xmem_skl_profile):
        with pytest.raises(ConfigurationError):
            MlpCalculator(knl, xmem_skl_profile)


class TestCoreOverride:
    def test_custom_core_count(self, skl):
        half = MlpCalculator(skl, cores=12).calculate_gbs(50.0)
        full = MlpCalculator(skl).calculate_gbs(50.0)
        assert half.n_avg == pytest.approx(2 * full.n_avg)

    def test_rejects_bad_core_count(self, skl):
        with pytest.raises(ConfigurationError):
            MlpCalculator(skl, cores=0)
        with pytest.raises(ConfigurationError):
            MlpCalculator(skl, cores=100)

    def test_rejects_negative_bandwidth(self, skl):
        with pytest.raises(ConfigurationError):
            MlpCalculator(skl).calculate(-5.0)
