"""RoutineAnalyzer: end-to-end per-routine analysis + stationarity guard."""

import random

import pytest

from repro.core import AccessPattern, Classification, RoutineAnalyzer
from repro.errors import ConfigurationError, StationarityError
from repro.sim import SimConfig, run_trace, trace_from_addresses


def _run(machine, n=600, seed=5, routine="r", gap=2.0):
    rng = random.Random(seed)
    line = machine.line_bytes
    trace = trace_from_addresses(
        [[rng.randrange(1 << 22) * line for _ in range(n)] for _ in range(2)],
        line_bytes=line,
        gap_cycles=gap,
        routine=routine,
    )
    return run_trace(trace, SimConfig(machine=machine, sim_cores=2, window_per_core=16))


class TestBandwidthEntry:
    def test_isx_skl_report(self, skl):
        analyzer = RoutineAnalyzer(skl)
        report = analyzer.analyze_bandwidth_gbs(
            106.9, routine="count_local_keys", prefetch_fraction=0.05
        )
        assert report.mlp.n_avg == pytest.approx(10.1, rel=0.05)
        assert report.classification.pattern is AccessPattern.RANDOM
        assert report.decision.stop
        assert "count_local_keys" in report.render()

    def test_requires_exactly_one_evidence(self, skl):
        analyzer = RoutineAnalyzer(skl)
        with pytest.raises(ConfigurationError):
            analyzer.analyze_bandwidth_gbs(50.0)
        with pytest.raises(ConfigurationError):
            analyzer.analyze_bandwidth_gbs(
                50.0,
                prefetch_fraction=0.5,
                classification=Classification(
                    AccessPattern.RANDOM, 0.0, rationale="x"
                ),
            )

    def test_explicit_classification(self, skl):
        analyzer = RoutineAnalyzer(skl)
        report = analyzer.analyze_bandwidth_gbs(
            50.0,
            classification=Classification(AccessPattern.STREAMING, 0.9, "given"),
        )
        assert report.decision.binding_level == 2


class TestRunEntry:
    def test_analyze_simulated_run(self, skl):
        stats = _run(skl, routine="kernel_a")
        report = RoutineAnalyzer(skl).analyze_run(stats)
        assert report.routine == "kernel_a"
        # Random trace: the analyzer must see it as L1-bound.
        assert report.decision.binding_level == 1
        assert report.mlp.n_avg > 5  # near the 10-entry file

    def test_slice_bandwidth_scaled_to_socket(self, skl):
        stats = _run(skl)
        report = RoutineAnalyzer(skl).analyze_run(stats)
        slice_bw = stats.bandwidth_bytes_per_s()
        assert report.mlp.bandwidth_bytes == pytest.approx(
            slice_bw * 12, rel=0.2
        )  # 24 cores / 2 simulated


class TestStationarityGuard:
    def test_dissimilar_routines_rejected(self, skl):
        fast = _run(skl, routine="fast", gap=2.0)
        slow = _run(skl, seed=9, routine="slow", gap=150.0)
        with pytest.raises(StationarityError):
            RoutineAnalyzer(skl).analyze_program([fast, slow])

    def test_force_marks_non_stationary(self, skl):
        fast = _run(skl, routine="fast", gap=2.0)
        slow = _run(skl, seed=9, routine="slow", gap=150.0)
        report = RoutineAnalyzer(skl).analyze_program([fast, slow], force=True)
        assert report.non_stationary
        assert "WARNING" in report.render()

    def test_similar_routines_allowed(self, skl):
        a = _run(skl, routine="a", seed=1)
        b = _run(skl, routine="b", seed=2)
        report = RoutineAnalyzer(skl).analyze_program([a, b])
        assert not report.non_stationary

    def test_empty_runs_rejected(self, skl):
        with pytest.raises(ConfigurationError):
            RoutineAnalyzer(skl).analyze_program([])
