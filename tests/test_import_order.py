"""Import-order robustness: any subpackage can be imported first.

The package has legitimate conceptual cycles (the advisor in ``core``
drives ``perfmodel`` over ``workloads`` states) that are broken with
type-only imports; these tests pin that property by importing each
subpackage as the *first* repro import in a fresh interpreter.
"""

import subprocess
import sys

import pytest

SUBPACKAGES = [
    "repro",
    "repro.apps",
    "repro.core",
    "repro.counters",
    "repro.experiments",
    "repro.gpu",
    "repro.io",
    "repro.machines",
    "repro.memory",
    "repro.optim",
    "repro.perfmodel",
    "repro.roofline",
    "repro.sim",
    "repro.tma",
    "repro.workloads",
    "repro.workloads.generators",
    "repro.optim.pipeline",
    "repro.cli",
    "repro.xmem",
]


@pytest.mark.parametrize("module", SUBPACKAGES)
def test_fresh_import(module):
    result = subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
