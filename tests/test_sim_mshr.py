"""MSHR file semantics: allocation, merging, release, waiters."""

import pytest

from repro.errors import SimulationError
from repro.sim import MshrFile


class TestAllocation:
    def test_allocate_tracks_occupancy(self):
        mshr = MshrFile("t", 4)
        mshr.allocate(0.0, 0x1000, is_prefetch=False)
        assert mshr.occupancy == 1
        assert not mshr.is_full

    def test_fills_to_capacity(self):
        mshr = MshrFile("t", 2)
        mshr.allocate(0.0, 0x0, is_prefetch=False)
        mshr.allocate(0.0, 0x40, is_prefetch=False)
        assert mshr.is_full

    def test_duplicate_allocation_rejected(self):
        mshr = MshrFile("t", 4)
        mshr.allocate(0.0, 0x1000, is_prefetch=False)
        with pytest.raises(SimulationError):
            mshr.allocate(1.0, 0x1000, is_prefetch=False)

    def test_allocate_on_full_rejected(self):
        mshr = MshrFile("t", 1)
        mshr.allocate(0.0, 0x0, is_prefetch=False)
        with pytest.raises(SimulationError):
            mshr.allocate(0.0, 0x40, is_prefetch=False)

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            MshrFile("t", 0)


class TestMerging:
    def test_secondary_miss_merges_without_new_entry(self):
        """Duplicate requests never allocate a second MSHR (paper III-A)."""
        mshr = MshrFile("t", 4)
        mshr.allocate(0.0, 0x1000, is_prefetch=False)
        called = []
        mshr.merge(0x1000, lambda: called.append(1), demand=True)
        assert mshr.occupancy == 1
        assert mshr.merges == 1

    def test_demand_merge_upgrades_prefetch_entry(self):
        mshr = MshrFile("t", 4)
        entry = mshr.allocate(0.0, 0x1000, is_prefetch=True)
        mshr.merge(0x1000, None, demand=True)
        assert not entry.is_prefetch

    def test_merge_without_entry_rejected(self):
        with pytest.raises(SimulationError):
            MshrFile("t", 4).merge(0x1000, None, demand=True)


class TestRelease:
    def test_release_returns_waiters(self):
        mshr = MshrFile("t", 4)
        mshr.allocate(0.0, 0x1000, is_prefetch=False)
        done = []
        mshr.merge(0x1000, lambda: done.append("a"), demand=True)
        entry = mshr.release(10.0, 0x1000)
        assert len(entry.waiters) == 1
        assert mshr.occupancy == 0

    def test_release_without_entry_rejected(self):
        with pytest.raises(SimulationError):
            MshrFile("t", 4).release(0.0, 0x1000)

    def test_release_wakes_free_waiters(self):
        mshr = MshrFile("t", 1)
        mshr.allocate(0.0, 0x0, is_prefetch=False)
        woken = []
        mshr.wait_for_free(lambda: woken.append(1))
        mshr.release(5.0, 0x0)
        assert woken == [1]

    def test_free_waiters_fire_once(self):
        mshr = MshrFile("t", 1)
        mshr.allocate(0.0, 0x0, is_prefetch=False)
        woken = []
        mshr.wait_for_free(lambda: woken.append(1))
        mshr.release(5.0, 0x0)
        mshr.allocate(6.0, 0x40, is_prefetch=False)
        mshr.release(7.0, 0x40)
        assert woken == [1]


class TestOccupancyIntegral:
    def test_time_average_occupancy(self):
        """One entry held 10ns within a 20ns window averages 0.5."""
        mshr = MshrFile("t", 4)
        mshr.allocate(0.0, 0x0, is_prefetch=False)
        mshr.release(10.0, 0x0)
        mshr.tracker.update(20.0)
        assert mshr.tracker.average(20.0) == pytest.approx(0.5)

    def test_full_time_accounting(self):
        mshr = MshrFile("t", 1)
        mshr.allocate(0.0, 0x0, is_prefetch=False)
        mshr.release(8.0, 0x0)
        mshr.tracker.update(10.0)
        assert mshr.tracker.full_time_ns == pytest.approx(8.0)

    def test_peak_tracking(self):
        mshr = MshrFile("t", 3)
        mshr.allocate(0.0, 0x0, is_prefetch=False)
        mshr.allocate(1.0, 0x40, is_prefetch=False)
        mshr.release(2.0, 0x0)
        assert mshr.tracker.peak == 2
