"""Tables IV-IX reproduction: the library's headline validation.

Each test regenerates one paper table from the workload models through
the fixed-point solver and checks every row against the transcribed
paper data within the DESIGN.md tolerance bands.
"""

import pytest

from repro.experiments import (
    CASE_STUDY_TABLES,
    KNOWN_EXCEPTIONS,
    all_structural_checks,
    reproduce_table,
    score_recipe,
)

WORKLOADS = list(CASE_STUDY_TABLES)


@pytest.fixture(scope="module")
def reproductions():
    return {name: reproduce_table(name) for name in WORKLOADS}


class TestStructuralTables:
    """Tables I-III (counter visibility, applications, platforms)."""

    @pytest.mark.parametrize("table", ["table1", "table2", "table3"])
    def test_every_cell_matches_paper(self, table):
        checks = all_structural_checks()[table]
        mismatches = [(c.label, c.expected, c.actual) for c in checks if not c.ok]
        assert not mismatches


@pytest.mark.parametrize("workload", WORKLOADS)
class TestCaseStudyTables:
    """Tables IV-IX, row by row."""

    def test_row_count_matches_paper(self, reproductions, workload):
        table = reproductions[workload]
        assert len(table.comparisons) == len(CASE_STUDY_TABLES[workload])

    def test_n_avg_within_tolerance(self, reproductions, workload):
        bad = [
            (c.label, c.result.n_avg, c.paper.n_avg)
            for c in reproductions[workload].comparisons
            if not c.n_avg_ok
        ]
        assert not bad

    def test_bandwidth_within_tolerance(self, reproductions, workload):
        bad = [
            (c.label, c.result.bw_gbs, c.paper.bw_gbs)
            for c in reproductions[workload].comparisons
            if not c.bw_ok
        ]
        assert not bad

    def test_speedups_within_band(self, reproductions, workload):
        bad = [
            (c.label, c.result.speedup, c.paper.speedup)
            for c in reproductions[workload].comparisons
            if c.speedup_ok is False
        ]
        assert not bad

    def test_recipe_agrees_modulo_documented_exceptions(
        self, reproductions, workload
    ):
        bad = [
            (c.label, c.result.step)
            for c in reproductions[workload].comparisons
            if c.recipe_ok is False and c.known_exception is None
        ]
        assert not bad

    def test_render_produces_paper_style_table(self, reproductions, workload):
        text = reproductions[workload].render()
        assert "BW_obs" in text
        assert "n_avg" in text


class TestHeadlineShapes:
    """The qualitative claims each table exists to make."""

    def test_isx_skl_saturated_no_gains(self, reproductions):
        rows = reproductions["isx"].comparisons
        skl_rows = [c for c in rows if c.result.machine == "skl"]
        assert all(c.result.speedup < 1.05 for c in skl_rows)

    def test_isx_l2_prefetch_biggest_isx_win(self, reproductions):
        rows = reproductions["isx"].comparisons
        best = max(
            (c for c in rows if c.result.speedup), key=lambda c: c.result.speedup
        )
        assert best.result.step == "l2_prefetch"
        assert best.result.speedup > 1.25

    def test_hpcg_vectorization_ordering_matches_latency_headroom(
        self, reproductions
    ):
        """Paper IV-B: vect gains rank A64FX > KNL > SKL."""
        rows = {
            (c.result.machine, c.result.step): c.result.speedup
            for c in reproductions["hpcg"].comparisons
            if c.result.step == "vectorize"
        }
        assert (
            rows[("a64fx", "vectorize")]
            > rows[("knl", "vectorize")]
            > rows[("skl", "vectorize")]
        )

    def test_pennant_smt4_hits_l1_wall(self, reproductions):
        """Paper IV-C: 11.34/12 occupancy -> 4-way SMT buys nothing."""
        row = next(
            c
            for c in reproductions["pennant"].comparisons
            if c.result.machine == "knl" and c.result.step == "smt4"
        )
        assert row.result.speedup < 1.05
        assert row.result.n_avg > 0.9 * 12

    def test_comd_every_mlp_optimization_helps(self, reproductions):
        """Compute-bound CoMD: headroom everywhere, everything pays."""
        for c in reproductions["comd"].comparisons:
            if c.result.step in ("vectorize", "smt2", "smt4"):
                assert c.result.speedup > 1.15

    def test_minighost_tiling_wins_smt_does_not(self, reproductions):
        for c in reproductions["minighost"].comparisons:
            if c.result.step == "loop_tiling":
                assert c.result.speedup > 1.1
            if c.result.step in ("smt2", "smt4"):
                assert c.result.speedup < 1.06

    def test_minighost_a64fx_tiling_lowers_occupancy(self, reproductions):
        """Paper IV-E: tiling reduces MSHRQ occupancy while helping."""
        rows = [
            c for c in reproductions["minighost"].comparisons
            if c.result.machine == "a64fx"
        ]
        base = next(c for c in rows if c.result.source_label == "base")
        tiled = next(c for c in rows if c.result.source_label == "+ tiling")
        assert tiled.result.n_avg < base.result.n_avg

    def test_snap_prefetch_helps_more_off_skl(self, reproductions):
        rows = {
            c.result.machine: c.result.speedup
            for c in reproductions["snap"].comparisons
            if c.result.step == "sw_prefetch"
        }
        assert rows["skl"] < rows["knl"]
        assert rows["skl"] < 1.05  # aggressive SKL prefetcher

    def test_crossover_isx_binding_shifts_to_l2(self, reproductions):
        """After l2-pref the terminal occupancies exceed the L1 file."""
        for c in reproductions["isx"].comparisons:
            if "l2-pref" in c.result.source_label:
                assert c.result.n_avg > 12


class TestRecipeScore:
    def test_no_unexplained_disagreements(self):
        score = score_recipe()
        assert score.disagree == 0
        assert score.accuracy_excluding_exceptions == pytest.approx(1.0)
        # Only the paper-documented contention rows need excusing.
        assert score.known_exceptions <= len(KNOWN_EXCEPTIONS)

    def test_substantial_row_count(self):
        assert score_recipe().total_rows >= 28  # every opt row of Tables IV-IX
