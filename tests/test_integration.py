"""End-to-end integration: the paper's full workflow on the simulator.

Two pipelines, neither of which touches any calibrated table data:

1. characterize → measure → analyze → recommend (the Figure 1 loop,
   with the latency profile coming from the X-Mem substitute and the
   bandwidth from the counter facade over a simulated run);
2. act on the recommendation, re-run, and confirm the simulator shows
   the predicted improvement (the ISx L2-prefetch loop on KNL).
"""

import pytest

from repro.core import OptimizationKind, RecipeContext, RoutineAnalyzer
from repro.counters import CounterSession, RoutineProfile
from repro.sim import SimConfig, run_trace
from repro.workloads import get_workload
from repro.workloads.base import TraceSpec
from repro.xmem import XMemConfig, characterize_machine


class TestFullWorkflowOnSkl:
    """ISx on SKL: measured profile + simulated counters -> 'stop'."""

    @pytest.fixture(scope="class")
    def analyzer(self, skl, xmem_skl_profile):
        return RoutineAnalyzer(skl, xmem_skl_profile)

    @pytest.fixture(scope="class")
    def isx_stats(self, skl):
        trace = get_workload("isx").generate_trace(
            skl, spec=TraceSpec(threads=2, accesses_per_thread=2500)
        )
        return run_trace(
            trace, SimConfig(machine=skl, sim_cores=2, window_per_core=14)
        )

    def test_random_classification_from_counters(self, analyzer, isx_stats):
        report = analyzer.analyze_run(isx_stats)
        assert report.decision.binding_level == 1

    def test_occupancy_near_l1_file(self, analyzer, isx_stats):
        report = analyzer.analyze_run(isx_stats)
        assert report.mlp.n_avg > 7  # pushing the 10-entry file

    def test_l2_prefetch_or_stop_is_the_guidance(self, analyzer, isx_stats):
        """On SKL the profile-measured bandwidth is near achievable, so
        the recipe either stops or points at the L2-prefetch shift —
        never at vectorization/SMT."""
        report = analyzer.analyze_run(isx_stats)
        top = report.decision.top_recommendation()
        if top is not None:
            assert top.kind is OptimizationKind.SW_PREFETCH_L2
        for kind in (OptimizationKind.VECTORIZATION, OptimizationKind.SMT):
            assert not report.decision.benefit_of(kind).expects_speedup


class TestActOnRecommendationLoop:
    """KNL ISx: recommendation -> transform -> re-measure -> better."""

    @pytest.fixture(scope="class")
    def knl_profile(self, knl):
        return characterize_machine(
            knl, XMemConfig(levels=6, accesses_per_thread=1200)
        )

    def test_l2_prefetch_recommended_then_confirmed(self, knl, knl_profile):
        workload = get_workload("isx")
        spec = TraceSpec(threads=2, accesses_per_thread=2500)
        cfg = lambda: SimConfig(machine=knl, sim_cores=2, window_per_core=14)

        base_stats = run_trace(workload.generate_trace(knl, spec=spec), cfg())
        analyzer = RoutineAnalyzer(knl, knl_profile)
        report = analyzer.analyze_run(base_stats)

        # The recipe must point at the L2-prefetch shift.
        benefits = {
            r.kind: r.benefit for r in report.decision.recommendations
        }
        assert OptimizationKind.SW_PREFETCH_L2 in benefits
        assert benefits[OptimizationKind.SW_PREFETCH_L2].expects_speedup

        # Apply it and re-run: time drops, occupancy moves to L2.
        opt_stats = run_trace(
            workload.generate_trace(knl, steps=("l2_prefetch",), spec=spec), cfg()
        )
        assert opt_stats.elapsed_ns < base_stats.elapsed_ns
        assert opt_stats.avg_occupancy(2) > base_stats.avg_occupancy(2)

        # Re-analysis sees the higher-MLP operating point.
        ctx = RecipeContext(applied=frozenset({OptimizationKind.SW_PREFETCH_L2}))
        report2 = analyzer.analyze_run(opt_stats, context=ctx)
        assert report2.mlp.n_avg > report.mlp.n_avg


class TestTablesWithMeasuredProfile:
    """The case-study engine fed a *measured* X-Mem curve, not the
    calibrated model — the workflow a real user of the library runs."""

    def test_isx_skl_rows_with_measured_curve(self, skl, xmem_skl_profile):
        from repro.experiments import rows_for
        from repro.perfmodel import CaseStudyRunner
        from repro.workloads import get_workload

        runner = CaseStudyRunner(
            get_workload("isx"), skl, curve=xmem_skl_profile
        )
        results = runner.run()
        paper_rows = rows_for("isx", "skl")
        assert len(results) == len(paper_rows)
        for result, paper in zip(results, paper_rows):
            # Looser bands: the measured curve carries admission-queue
            # bias, but the verdicts and magnitudes must survive it.
            assert result.n_avg == pytest.approx(paper.n_avg, rel=0.35)
            if result.speedup is not None:
                # The saturated-SKL story must hold: nothing helps.
                assert result.speedup < 1.08

    def test_recipe_verdict_stable_under_measured_curve(self, skl, xmem_skl_profile):
        from repro.perfmodel import CaseStudyRunner
        from repro.workloads import get_workload

        runner = CaseStudyRunner(get_workload("isx"), skl, curve=xmem_skl_profile)
        base = runner.run_row((), "vectorize")
        assert base.recipe_benefit is not None
        assert not base.recipe_benefit.expects_speedup  # still "stop"


class TestPerRoutineProfileFlow:
    def test_craypat_feeds_analyzer(self, skl, xmem_skl_profile):
        """CrayPat-substitute per-routine bandwidths drive the analysis."""
        profile = RoutineProfile(skl)
        for name in ("isx", "snap"):
            trace = get_workload(name).generate_trace(
                skl, spec=TraceSpec(threads=2, accesses_per_thread=1500)
            )
            stats = run_trace(
                trace, SimConfig(machine=skl, sim_cores=2, window_per_core=16)
            )
            profile.add_run(stats)
        analyzer = RoutineAnalyzer(skl, xmem_skl_profile)
        for report_row in profile.reports():
            scaled = report_row.bandwidth_bytes * skl.active_cores / 2
            analysis = analyzer.analyze_bandwidth(
                scaled,
                routine=report_row.routine,
                prefetch_fraction=report_row.prefetch_fraction,
            )
            assert analysis.mlp.n_avg >= 0
        # The two routines behave differently - exactly why the paper
        # insists on per-routine attribution.
        reports = profile.reports()
        assert (
            abs(reports[0].prefetch_fraction - reports[1].prefetch_fraction) > 0.1
        )
