"""The analytic-vs-simulator cross-validation harness (experiments)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.analytic_crossval import (
    crossval_analytic,
    render_analytic_crossval,
    rows_to_json,
    table_ok,
)
from repro.perf.cache import SimCache
from repro.perfmodel.queueing import (
    ANALYTIC_BW_ERROR_BOUND,
    ANALYTIC_LAT_ERROR_BOUND,
)
from repro.workloads import ALL_WORKLOADS, get_workload
from repro.xmem.runner import XMemConfig

LIGHT = XMemConfig(levels=6, accesses_per_thread=1200)


@pytest.fixture(scope="module")
def rows(skl, tmp_path_factory):
    cache = SimCache(tmp_path_factory.mktemp("crossval-cache"), enabled=True)
    picked = [get_workload(name) for name in ("isx", "comd", "minighost")]
    return crossval_analytic(
        machines=[skl], workloads=picked, xmem_config=LIGHT, cache=cache
    )


class TestCrossValTable:
    def test_covers_requested_grid(self, rows):
        assert [(r.workload, r.machine) for r in rows] == [
            ("isx", "skl"),
            ("comd", "skl"),
            ("minighost", "skl"),
        ]

    def test_minighost_falls_back_with_reason(self, rows):
        row = next(r for r in rows if r.workload == "minighost")
        assert not row.eligible
        assert "prefetch-dominated" in row.fallback_reason
        assert row.within_bound  # vacuous: --fast never answers it

    def test_eligible_rows_within_documented_bounds(self, rows):
        eligible = [r for r in rows if r.eligible]
        assert eligible
        for row in eligible:
            assert row.fallback_reason == ""
            assert row.bandwidth_rel_error <= ANALYTIC_BW_ERROR_BOUND
            assert row.latency_rel_error <= ANALYTIC_LAT_ERROR_BOUND

    def test_table_ok(self, rows):
        assert table_ok(rows)

    def test_out_of_bound_row_fails_table(self, rows):
        bad = dataclasses.replace(
            rows[0], bandwidth_rel_error=ANALYTIC_BW_ERROR_BOUND + 0.01
        )
        assert not bad.within_bound
        assert not table_ok([*rows, bad])

    def test_unreasoned_fallback_fails_table(self, rows):
        bad = dataclasses.replace(rows[0], eligible=False, fallback_reason="")
        assert not table_ok([*rows, bad])

    def test_render(self, rows):
        text = render_analytic_crossval(rows)
        assert "in bound" in text
        assert "fallback: prefetch-dominated" in text
        assert "worst bw err" in text

    def test_json_export(self, rows):
        doc = json.loads(rows_to_json(rows))
        assert doc["bounds"]["bandwidth_rel_error"] == ANALYTIC_BW_ERROR_BOUND
        assert len(doc["rows"]) == len(rows)
        assert all("within_bound" in r for r in doc["rows"])


def test_full_grid_shape_is_six_by_three():
    """The CI table covers every paper workload on every paper machine."""
    from repro.machines.registry import paper_machines

    names = {w.name for w in ALL_WORKLOADS}
    assert len(names) == 6
    assert len(paper_machines()) == 3
    for workload in ALL_WORKLOADS:
        for machine in paper_machines():
            assert machine.name in workload.machines()


def test_row_is_frozen(rows):
    with pytest.raises(dataclasses.FrozenInstanceError):
        rows[0].workload = "x"
