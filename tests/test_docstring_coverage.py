"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
makes the requirement executable.  "Public" = importable from a repro
subpackage's ``__all__`` (or, for modules without ``__all__``, every
non-underscore top-level class/function defined in that module).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_have_docstrings(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [
            name
            for name, obj in vars(module).items()
            if not name.startswith("_")
            and (inspect.isclass(obj) or inspect.isfunction(obj))
            and getattr(obj, "__module__", None) == module.__name__
        ]
    undocumented = []
    for name in names:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{module.__name__}: {undocumented}"


@pytest.mark.parametrize(
    "module",
    [m for m in MODULES if not m.__name__.endswith("__init__")],
    ids=lambda m: m.__name__,
)
def test_public_methods_have_docstrings(module):
    """Public methods of public classes are documented too."""
    undocumented = []
    for cls_name, cls in vars(module).items():
        if cls_name.startswith("_") or not inspect.isclass(cls):
            continue
        if getattr(cls, "__module__", None) != module.__name__:
            continue
        for meth_name, meth in vars(cls).items():
            if meth_name.startswith("_"):
                continue
            func = meth.fget if isinstance(meth, property) else meth
            if not callable(func) and not isinstance(meth, property):
                continue
            if inspect.isfunction(func) or isinstance(meth, property):
                if not (func.__doc__ and func.__doc__.strip()):
                    undocumented.append(f"{cls_name}.{meth_name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"
