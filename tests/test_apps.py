"""Executable mini-apps: numerical correctness + trace signatures."""

import pytest

from repro.apps import (
    AddressSpace,
    ComdApp,
    HpcgApp,
    IsxApp,
    MinighostApp,
    PennantApp,
    SnapApp,
    build_27pt_csr,
    partition,
)
from repro.errors import ConfigurationError
from repro.sim import SimConfig, run_trace


def _simulate(trace, machine, **kwargs):
    cfg = SimConfig(machine=machine, sim_cores=2, window_per_core=14, **kwargs)
    return run_trace(trace, cfg)


class TestCommon:
    def test_partition_covers_everything(self):
        ranges = partition(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_partition_rejects_zero_parts(self):
        with pytest.raises(ConfigurationError):
            partition(10, 0)

    def test_address_space_arrays_disjoint(self):
        space = AddressSpace()
        space.add("a", 1000, 8)
        space.add("b", 1000, 8)
        a_hi = space.addr("a", 999)
        b_lo = space.addr("b", 0)
        assert b_lo - a_hi > 1 << 20  # regions far apart

    def test_address_space_duplicate_rejected(self):
        space = AddressSpace()
        space.add("a", 10)
        with pytest.raises(ConfigurationError):
            space.add("a", 10)

    def test_address_space_unknown_array(self):
        with pytest.raises(ConfigurationError):
            AddressSpace().addr("ghost", 0)


class TestIsxApp:
    @pytest.fixture(scope="class")
    def app(self):
        return IsxApp(keys_per_thread=1500)

    def test_counts_sum_to_keys(self, app):
        assert app.verify()

    def test_counts_match_bincount(self, app):
        import numpy as np

        counts = app.count_local_keys()
        expected = np.bincount(app.keys, minlength=app.buckets)
        assert (counts == expected).all()

    def test_trace_is_l1_bound_random(self, app, skl):
        stats = _simulate(app.extract_trace(skl), skl)
        assert stats.memory.prefetch_fraction < 0.3
        assert stats.avg_occupancy(1) > 5.0

    def test_l2_prefetch_variant_relieves_l1(self, app, knl):
        """The ISx unlock from the *real* kernel's addresses: L1 holds
        shorten, the L2 file takes the load, bandwidth rises."""
        base = _simulate(app.extract_trace(knl), knl)
        pref = _simulate(app.extract_trace(knl, l2_prefetch=True), knl)
        assert pref.sw_prefetches_issued > 0
        assert pref.avg_occupancy(1) < 0.7 * base.avg_occupancy(1)
        assert pref.avg_occupancy(2) > 2.0 * base.avg_occupancy(2)
        assert pref.bandwidth_bytes_per_s() > 1.3 * base.bandwidth_bytes_per_s()


class TestHpcgApp:
    @pytest.fixture(scope="class")
    def app(self):
        return HpcgApp(n=6)

    def test_csr_structure(self):
        row_ptr, col_idx, values = build_27pt_csr(4)
        assert len(row_ptr) == 4**3 + 1
        # Interior rows have the full 27 entries.
        interior = (4 // 2) * 16 + 4 * 2 + 2  # row (2,2,2)... just check max
        import numpy as np

        assert np.diff(row_ptr).max() == 27
        assert np.diff(row_ptr).min() == 8  # corner cells

    def test_spmv_matches_vectorized(self, app):
        assert app.verify()

    def test_trace_is_streaming_l2_bound(self, app, skl):
        stats = _simulate(app.extract_trace(skl, max_rows=250), skl)
        assert stats.memory.prefetch_fraction > 0.4
        assert stats.avg_occupancy(2) > stats.avg_occupancy(1)


class TestPennantApp:
    @pytest.fixture(scope="class")
    def app(self):
        return PennantApp(zones=20000)

    def test_scatter_matches_add_at(self, app):
        assert app.verify()

    def test_trace_is_irregular_l1_bound(self, app, skl):
        stats = _simulate(app.extract_trace(skl, max_corners=3000), skl)
        assert stats.memory.prefetch_fraction < 0.2
        assert stats.avg_occupancy(1) > 0.6 * skl.l1.mshrs

    def test_vectorized_trace_raises_mlp(self, app, skl):
        scalar = _simulate(app.extract_trace(skl, max_corners=2500), skl)
        vector = _simulate(
            app.extract_trace(skl, vectorized=True, max_corners=2500), skl
        )
        assert vector.elapsed_ns < scalar.elapsed_ns


class TestComdApp:
    @pytest.fixture(scope="class")
    def app(self):
        return ComdApp(particles=250)

    def test_cell_list_matches_direct(self, app):
        assert app.verify()

    def test_trace_is_compute_bound(self, app, skl):
        stats = _simulate(app.extract_trace(skl), skl)
        assert stats.avg_occupancy(1) < 0.3 * skl.l1.mshrs
        assert stats.avg_occupancy(2) < 0.3 * skl.l2.mshrs


class TestMinighostApp:
    @pytest.fixture(scope="class")
    def app(self):
        return MinighostApp(nx=16, ny=10, nz=10)

    def test_stencil_matches_shifted_sums(self, app):
        assert app.verify()

    def test_trace_is_prefetch_covered(self, app, skl):
        stats = _simulate(app.extract_trace(skl, max_cells=350), skl)
        assert stats.memory.prefetch_fraction > 0.3


class TestSnapApp:
    @pytest.fixture(scope="class")
    def app(self):
        return SnapApp(nx=16, ny=10, nang=32)

    def test_sweep_order_independent_and_positive(self, app):
        assert app.verify()

    def test_trace_has_low_occupancy(self, app, skl):
        stats = _simulate(app.extract_trace(skl, max_cells=100), skl)
        assert stats.avg_occupancy(2) < 0.5 * skl.l2.mshrs

    def test_sw_prefetch_variant_emits_hints(self, app, skl):
        stats = _simulate(
            app.extract_trace(skl, sw_prefetch=True, max_cells=100), skl
        )
        assert stats.sw_prefetches_issued > 0
