"""Access-pattern classification and the binding MSHR level."""

import math

import pytest

from repro.core import (
    AccessPattern,
    classify_by_prefetcher_toggle,
    classify_from_prefetch_fraction,
    dominant_pattern,
)
from repro.errors import ConfigurationError


class TestPrefetchFractionClassifier:
    def test_random_below_threshold(self):
        c = classify_from_prefetch_fraction(0.05)
        assert c.pattern is AccessPattern.RANDOM
        assert c.binding_level == 1

    def test_streaming_above_threshold(self):
        c = classify_from_prefetch_fraction(0.8)
        assert c.pattern is AccessPattern.STREAMING
        assert c.binding_level == 2

    def test_mixed_in_between(self):
        c = classify_from_prefetch_fraction(0.35)
        assert c.pattern is AccessPattern.MIXED
        assert c.binding_level == 2  # mixed defaults to L2 per dominance rule

    def test_rationale_mentions_coverage(self):
        assert "5%" in classify_from_prefetch_fraction(0.05).rationale

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ConfigurationError):
            classify_from_prefetch_fraction(bad)


class TestToggleClassifier:
    def test_big_slowdown_means_streaming(self):
        """HPCG: >3x degradation without the prefetcher (paper IV-B)."""
        c = classify_by_prefetcher_toggle(100.0, 320.0)
        assert c.pattern is AccessPattern.STREAMING
        assert math.isnan(c.prefetch_fraction)

    def test_no_slowdown_means_random(self):
        c = classify_by_prefetcher_toggle(100.0, 103.0)
        assert c.pattern is AccessPattern.RANDOM

    def test_middle_is_mixed(self):
        assert (
            classify_by_prefetcher_toggle(100.0, 125.0).pattern is AccessPattern.MIXED
        )

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ConfigurationError):
            classify_by_prefetcher_toggle(0.0, 100.0)


class TestDominanceRule:
    def test_random_traffic_dominates_mixes(self):
        """Paper III-D: SpMV's random stream dominates memory traffic."""
        assert dominant_pattern(60.0, 40.0) is AccessPattern.RANDOM

    def test_pure_streaming(self):
        assert dominant_pattern(0.0, 100.0) is AccessPattern.STREAMING

    def test_small_random_share_is_mixed(self):
        assert dominant_pattern(20.0, 80.0) is AccessPattern.MIXED

    def test_no_traffic_defaults_streaming(self):
        assert dominant_pattern(0.0, 0.0) is AccessPattern.STREAMING

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            dominant_pattern(-1.0, 1.0)
