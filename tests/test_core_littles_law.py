"""Equations 1-2 and their rearrangements, against paper numbers."""

import pytest

from repro.core import (
    bandwidth_from_mlp,
    latency_from_mlp,
    mlp_from_bandwidth,
    mlp_from_requests,
    requests_from_bandwidth,
)
from repro.errors import ConfigurationError


class TestEquation2PaperRows:
    """Every base row of Tables IV-IX must fall out of Equation 2."""

    @pytest.mark.parametrize(
        "bw_gbs,lat_ns,cls,cores,expected",
        [
            (106.9, 145, 64, 24, 10.1),  # ISx SKL
            (233.0, 180, 64, 64, 10.23),  # ISx KNL
            (649.0, 188, 256, 48, 9.92),  # ISx A64FX (256B lines!)
            (109.9, 171, 64, 24, 12.6),  # HPCG SKL (paper rounds up)
            (271.0, 156, 256, 48, 3.44),  # HPCG A64FX
            (37.9, 93, 64, 24, 2.29),  # PENNANT SKL
            (3.19, 82, 64, 24, 0.17),  # CoMD SKL
            (232.96, 198, 64, 64, 11.26),  # MiniGhost KNL
            (58.2, 100.1, 64, 24, 3.79),  # SNAP SKL
            (122.9, 167, 64, 64, 5.0),  # SNAP KNL
        ],
    )
    def test_paper_row(self, bw_gbs, lat_ns, cls, cores, expected):
        n = mlp_from_bandwidth(bw_gbs * 1e9, lat_ns, cls, cores=cores)
        assert n == pytest.approx(expected, rel=0.05)


class TestRearrangements:
    def test_bandwidth_inverse(self):
        bw = bandwidth_from_mlp(10.1, 145, 64, cores=24)
        assert mlp_from_bandwidth(bw, 145, 64, cores=24) == pytest.approx(10.1)

    def test_latency_inverse(self):
        lat = latency_from_mlp(10.1, 106.9e9, 64, cores=24)
        assert mlp_from_bandwidth(106.9e9, lat, 64, cores=24) == pytest.approx(10.1)

    def test_figure2_ceiling(self):
        """12 L1 MSHRs at ~192ns on 64 KNL cores -> 256 GB/s (Fig. 2)."""
        bw = bandwidth_from_mlp(12, 192, 64, cores=64)
        assert bw == pytest.approx(256e9, rel=0.01)

    def test_requests_from_bandwidth(self):
        # 64 GB/s for 1 us moves 1000 lines of 64B.
        assert requests_from_bandwidth(64e9, 1000.0, 64) == pytest.approx(1000.0)


class TestEquation1:
    def test_requests_form(self):
        # 1000 requests over 1000ns at 10ns latency -> 10 outstanding.
        assert mlp_from_requests(1000, 10.0, 1000.0) == pytest.approx(10.0)

    def test_per_core_division(self):
        assert mlp_from_requests(1000, 10.0, 1000.0, cores=10) == pytest.approx(1.0)

    def test_equivalence_of_equations(self):
        """Eq 1 and Eq 2 agree when BW = R*cls/T."""
        requests, time_ns, cls, lat = 5000.0, 2000.0, 64, 150.0
        bw = requests * cls / (time_ns * 1e-9)
        assert mlp_from_requests(requests, lat, time_ns) == pytest.approx(
            mlp_from_bandwidth(bw, lat, cls)
        )


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(bandwidth_bytes=-1.0, latency_ns=100, line_bytes=64),
        dict(bandwidth_bytes=1e9, latency_ns=0, line_bytes=64),
        dict(bandwidth_bytes=1e9, latency_ns=100, line_bytes=0),
        dict(bandwidth_bytes=1e9, latency_ns=100, line_bytes=64, cores=0),
    ])
    def test_mlp_from_bandwidth_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            mlp_from_bandwidth(**kwargs)

    def test_bandwidth_from_mlp_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            bandwidth_from_mlp(-1.0, 100, 64)

    def test_latency_from_mlp_rejects_zero_bw(self):
        with pytest.raises(ConfigurationError):
            latency_from_mlp(1.0, 0.0, 64)
