"""§IV-G extension: HBM2e/3 parts and the MSHR-bound regime."""

import pytest

from repro.core import AccessPattern, Classification, MlpCalculator, Recipe
from repro.machines import (
    get_machine,
    hbm2e_concept,
    hbm3_concept,
    mshr_bound_fraction,
    paper_machines,
)
from repro.perfmodel import solve_operating_point


class TestConceptMachines:
    def test_registered(self):
        assert get_machine("hbm3").name == "hbm3"
        assert get_machine("hbm2e").peak_bw_gbs == pytest.approx(1600.0)

    def test_not_in_paper_set(self):
        assert {m.name for m in paper_machines()} == {"skl", "knl", "a64fx"}


class TestMshrBoundRegime:
    """'L2 MSHRQ becomes full prior to achieving peak bandwidth even
    for streaming applications' (paper §IV-G)."""

    def test_hbm3_is_deeply_mshr_bound(self):
        machine = hbm3_concept()
        fraction = mshr_bound_fraction(machine, loaded_latency_ns=250.0)
        assert fraction < 0.5  # the file cannot feed even half the pipe

    def test_hbm2e_is_mshr_bound(self):
        machine = hbm2e_concept()
        fraction = mshr_bound_fraction(machine, loaded_latency_ns=250.0)
        assert fraction < 1.0

    def test_paper_machines_are_not(self):
        """Today's parts can (roughly) feed their memory from the L2
        file - which is why the paper calls the regime 'upcoming'."""
        for machine in paper_machines():
            fraction = mshr_bound_fraction(
                machine, loaded_latency_ns=machine.memory.idle_latency_ns * 1.4
            )
            assert fraction > 0.8

    def test_streaming_kernel_fills_file_below_peak(self):
        """Even unlimited streaming demand saturates the MSHR file, not
        the memory, on the HBM3 part."""
        machine = hbm3_concept()
        point = solve_operating_point(machine, demand_mlp=1000.0, binding_level=2)
        assert point.n_sustained == machine.l2.mshrs
        assert point.bandwidth_bytes < 0.5 * machine.memory.peak_bw_bytes
        assert not point.bandwidth_capped


class TestComputeBoundCertificate:
    """§IV-G's punchline: occupancy is the 'full proof' compute-bound
    test - less-than-peak bandwidth alone is not, on HBM parts."""

    def test_low_occupancy_certifies_compute_bound(self):
        machine = hbm3_concept()
        calc = MlpCalculator(machine)
        # A kernel using 10% of peak bandwidth...
        result = calc.calculate(0.10 * machine.memory.peak_bw_bytes)
        # ...whose occupancy is far below the file: genuinely compute
        # bound, and the recipe still has MLP headroom to offer.
        assert result.n_avg < 0.5 * machine.l2.mshrs
        decision = Recipe(machine).decide(
            result, Classification(AccessPattern.STREAMING, 0.8, "test")
        )
        assert not decision.stop

    def test_full_file_below_peak_is_not_compute_bound(self):
        machine = hbm3_concept()
        point = solve_operating_point(machine, demand_mlp=1000.0, binding_level=2)
        calc = MlpCalculator(machine)
        result = calc.calculate(point.bandwidth_bytes)
        # Bandwidth says "plenty of headroom" (<50% of peak)...
        assert result.utilization < 0.5
        # ...but the file is full: memory-system bound, not compute.
        assert result.n_avg > 0.9 * machine.l2.mshrs
