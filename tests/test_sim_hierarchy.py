"""Hierarchy integration: full request flow through L1/L2/MC."""

import random

import pytest

from repro.errors import ConfigurationError, TraceError
from repro.sim import (
    Access,
    AccessKind,
    Hierarchy,
    SimConfig,
    ThreadTrace,
    Trace,
    run_trace,
    trace_from_addresses,
)


def _random_trace(n=800, threads=2, line=64, seed=1, gap=2.0, region=256 << 20):
    rng = random.Random(seed)
    return trace_from_addresses(
        [
            [rng.randrange(region // line) * line for _ in range(n)]
            for _ in range(threads)
        ],
        line_bytes=line,
        gap_cycles=gap,
        routine="rand",
    )


def _stream_trace(n=800, threads=2, line=64, streams=4, element=8):
    """Unit-stride element streams (8B elements within 64B lines), the
    shape of real streaming code: one compulsory miss per line with the
    intervening element hits giving the prefetcher time to run ahead."""
    out = []
    for t in range(threads):
        bases = [(t * streams + s) * (64 << 20) for s in range(streams)]
        offs = [0] * streams
        addrs = []
        for i in range(n):
            s = i % streams
            addrs.append(bases[s] + offs[s])
            offs[s] += element
        out.append(addrs)
    return trace_from_addresses(out, line_bytes=line, gap_cycles=2.0, routine="stream")


class TestConfigValidation:
    def test_too_many_sim_cores(self, skl):
        with pytest.raises(ConfigurationError):
            SimConfig(machine=skl, sim_cores=100)

    def test_too_many_threads(self, skl):
        with pytest.raises(ConfigurationError):
            SimConfig(machine=skl, sim_cores=1, threads_per_core=3)

    def test_window_split_across_threads(self, knl):
        cfg = SimConfig(machine=knl, sim_cores=1, threads_per_core=4, window_per_core=16)
        assert cfg.window_per_thread == 4

    def test_line_size_mismatch_rejected(self, skl, small_skl_config):
        trace = _random_trace(n=10, line=256)
        with pytest.raises(TraceError):
            run_trace(trace, small_skl_config)

    def test_thread_count_mismatch_rejected(self, skl, small_skl_config):
        trace = _random_trace(n=10, threads=3)
        with pytest.raises(TraceError):
            run_trace(trace, small_skl_config)


class TestRandomWorkload:
    """The ISx-shaped physics the paper's whole analysis rests on."""

    @pytest.fixture(scope="class")
    def stats(self, skl):
        cfg = SimConfig(machine=skl, sim_cores=2, window_per_core=16)
        return run_trace(_random_trace(n=1500), cfg)

    def test_l1_mshrs_saturate(self, skl, stats):
        assert stats.avg_occupancy(1) > 0.9 * skl.l1.mshrs

    def test_l1_never_exceeds_capacity(self, skl, stats):
        for tracker in stats.l1_occupancy:
            assert tracker.peak <= skl.l1.mshrs

    def test_prefetcher_ineffective_on_random(self, stats):
        assert stats.memory.prefetch_fraction < 0.1

    def test_mshr_full_stalls_recorded(self, stats):
        assert stats.l1.mshr_full_stall_ns > 0

    def test_littles_law_identity(self, stats):
        """Measured occupancy == rate x latency (the core invariant)."""
        check = stats.littles_law_check(2)
        assert check["relative_error"] < 0.01

    def test_bandwidth_below_scaled_peak(self, skl, stats):
        slice_peak = skl.memory.peak_bw_bytes * 2 / skl.active_cores
        assert 0 < stats.bandwidth_bytes_per_s() <= slice_peak


class TestStreamingWorkload:
    @pytest.fixture(scope="class")
    def stats(self, skl):
        cfg = SimConfig(machine=skl, sim_cores=2, window_per_core=16)
        return run_trace(_stream_trace(n=1500), cfg)

    def test_prefetch_covers_streaming(self, stats):
        assert stats.memory.prefetch_fraction > 0.5

    def test_l2_occupancy_exceeds_l1(self, stats):
        """Streaming binds the L2 MSHR file (paper III-A)."""
        assert stats.avg_occupancy(2) > stats.avg_occupancy(1)

    def test_hw_prefetches_issued(self, stats):
        assert stats.hw_prefetches_issued > 100


class TestPrefetcherToggle:
    def test_disabling_prefetcher_slows_streams(self, skl):
        """The paper's classification method: prefetcher off -> slower.

        A narrow window (little OoO latency hiding, like the in-order-ish
        cores the paper says gain most from prefetching) makes the effect
        unambiguous.
        """
        trace = _stream_trace(n=1200)
        on = run_trace(
            trace, SimConfig(machine=skl, sim_cores=2, window_per_core=2, hw_prefetch=True)
        )
        off = run_trace(
            trace, SimConfig(machine=skl, sim_cores=2, window_per_core=2, hw_prefetch=False)
        )
        assert off.elapsed_ns > 1.3 * on.elapsed_ns


class TestSoftwarePrefetch:
    def test_swpf_l2_bypasses_l1_mshrs(self, skl):
        """The ISx optimization mechanism: L2 prefetch never holds L1."""
        accesses = tuple(
            Access(i * 64, AccessKind.SWPF_L2, 1.0) for i in range(64, 464)
        )
        trace = Trace((ThreadTrace(0, accesses),), line_bytes=64)
        cfg = SimConfig(machine=skl, sim_cores=1, window_per_core=16)
        stats = run_trace(trace, cfg)
        assert stats.avg_occupancy(1) == pytest.approx(0.0, abs=1e-9)
        assert stats.avg_occupancy(2) > 0.0
        assert stats.sw_prefetches_issued == 400

    def test_demand_after_swpf_hits_l2(self, skl):
        """Prefetch a block, then demand it: L2 hits, short L1 holds."""
        lines = [i * 64 for i in range(256, 356)]
        # Pace prefetches below the slice's admission rate so none are
        # dropped on a full L2 MSHR file (16 entries on SKL).
        accesses = [Access(a, AccessKind.SWPF_L2, 40.0) for a in lines]
        # Wait out the memory latency with a spacer access far away.
        accesses += [Access(1 << 30, AccessKind.LOAD, 3000.0)]
        accesses += [Access(a, AccessKind.LOAD, 1.0) for a in lines]
        trace = Trace((ThreadTrace(0, tuple(accesses)),), line_bytes=64)
        stats = run_trace(trace, SimConfig(machine=skl, sim_cores=1, window_per_core=8))
        assert stats.l2.hits >= 90  # demands land on prefetched lines


class TestSmt:
    def test_two_threads_share_one_core(self, skl):
        trace = _random_trace(n=600, threads=2)
        cfg = SimConfig(
            machine=skl, sim_cores=1, threads_per_core=2, window_per_core=16
        )
        stats = run_trace(trace, cfg)
        assert len(stats.l1_occupancy) == 1  # one core slice
        assert len(stats.cores) == 2  # two thread contexts

    def test_smt_increases_core_mlp_when_window_small(self, skl):
        """SMT generates more in-flight requests from one core."""
        one = run_trace(
            _random_trace(n=800, threads=1),
            SimConfig(machine=skl, sim_cores=1, threads_per_core=1, window_per_core=4),
        )
        two = run_trace(
            _random_trace(n=800, threads=2),
            SimConfig(machine=skl, sim_cores=1, threads_per_core=2, window_per_core=8),
        )
        assert two.avg_occupancy(1) > one.avg_occupancy(1)


class TestStoresAndWritebacks:
    def test_store_traffic_produces_writebacks(self, skl):
        rng = random.Random(7)
        addrs = [rng.randrange(1 << 22) * 64 for _ in range(1200)]
        threads = (
            ThreadTrace(0, tuple(Access(a, AccessKind.STORE, 1.0) for a in addrs)),
        )
        trace = Trace(threads, line_bytes=64)
        stats = run_trace(trace, SimConfig(machine=skl, sim_cores=1, window_per_core=8))
        assert stats.memory.demand_write_bytes > 0


class TestDeterminism:
    def test_same_trace_same_stats(self, skl):
        trace = _random_trace(n=500, seed=42)
        cfg = lambda: SimConfig(machine=skl, sim_cores=2, window_per_core=16)
        a = run_trace(trace, cfg())
        b = run_trace(trace, cfg())
        assert a.elapsed_ns == b.elapsed_ns
        assert a.memory.total_bytes == b.memory.total_bytes
        assert a.avg_occupancy(1) == b.avg_occupancy(1)
