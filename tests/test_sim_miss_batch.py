"""Batched miss retirement: element-wise and end-to-end equivalence.

The contract (docs/PERFORMANCE.md, miss-stream batching): with
``SimConfig.batch_miss=True`` the simulator may retire runs *containing
misses* closed-form, and every semantic observable is bit-identical to
the event engine.  Exercised four ways:

* element-wise unit properties of the new vectorized surfaces against
  scalar sequences — ``MshrFile.allocate_batch``/``release_batch``
  (including aliasing rejection and full-file back-pressure),
  ``MemoryController.plan_batch``/``commit_batch`` (including zero-gap
  bursts), ``CacheArray.fill_batch``, and the latency models'
  ``latency_ns_batch``;
* end-to-end fingerprint equivalence and full engagement on the cold
  scatter workload (the regime the fast path targets);
* fallback diagnosability: the ``batch_fallbacks`` reason counters for
  SMT, L3, and non-drainable handoffs;
* config plumbing: ``batch_miss=False`` restricts batching to all-hit
  runs without changing results.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ProfileDomainError, SimulationError
from repro.machines import get_machine
from repro.machines.spec import CacheSpec
from repro.memory.latency_model import (
    QueueingLatencyModel,
    TabulatedLatencyModel,
)
from repro.sim import SimConfig, run_trace
from repro.sim.cache import CacheArray
from repro.sim.engine import Engine
from repro.sim.memctrl import MemoryController
from repro.sim.mshr import MshrFile
from repro.sim.stats import MemoryStats
from repro.xmem.kernels import pointer_chase_trace, scatter_trace
from repro.sim.trace import Trace


# -- MshrFile batch surface ------------------------------------------------------


def _interval_batch(draw_seed: int, n: int, capacity: int):
    """Alloc/release interval arrays with the batch-path preconditions."""
    rng = np.random.default_rng(draw_seed)
    alloc = 1.0 + np.cumsum(rng.uniform(0.5, 50.0, n))
    release = alloc + rng.uniform(0.25, 200.0, n)
    return alloc, release


def _sweep_max_occupancy(alloc: np.ndarray, release: np.ndarray) -> int:
    times = np.concatenate([alloc, release])
    deltas = np.concatenate([np.ones(len(alloc)), -np.ones(len(release))])
    order = np.argsort(times, kind="stable")
    return int(np.cumsum(deltas[order]).max())


class TestMshrBatchEquivalence:
    """allocate_batch/release_batch == scalar allocate/release sequences."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 24),
        capacity=st.integers(1, 6),
    )
    def test_matches_scalar_interval_replay(self, seed, n, capacity):
        alloc, release = _interval_batch(seed, n, capacity)
        assume(_sweep_max_occupancy(alloc, release) <= capacity)
        assume(not len(np.intersect1d(alloc, release)))
        lines = (np.arange(n, dtype=np.uint64) + 1) * 64

        batch = MshrFile("batch", capacity)
        batch.allocate_batch(alloc, lines)
        batch.release_batch(release)

        scalar = MshrFile("scalar", capacity)
        events = sorted(
            [(t, 0, i) for i, t in enumerate(alloc.tolist())]
            + [(t, 1, i) for i, t in enumerate(release.tolist())],
            key=lambda e: (e[0], e[2]),
        )
        for t, kind, i in events:
            if kind == 0:
                scalar.allocate(t, int(lines[i]), is_prefetch=False)
            else:
                scalar.release(t, int(lines[i]))

        assert batch.allocations == scalar.allocations
        assert not batch.entries and not scalar.entries
        bt, sct = batch.tracker, scalar.tracker
        assert bt.occupancy == sct.occupancy == 0
        assert bt.integral_ns == sct.integral_ns
        assert bt.full_time_ns == sct.full_time_ns
        assert bt.peak == sct.peak
        assert bt.last_update_ns == sct.last_update_ns

    def test_aliasing_within_batch_rejected(self):
        """A repeated line must merge on the event path, never batch."""
        mshr = MshrFile("alias", 8)
        times = np.array([1.0, 2.0])
        lines = np.array([64, 64], dtype=np.uint64)
        with pytest.raises(SimulationError, match="duplicate line"):
            mshr.allocate_batch(times, lines)

    def test_collision_with_live_entry_rejected(self):
        mshr = MshrFile("live", 8)
        mshr.allocate(0.5, 64, is_prefetch=False)
        with pytest.raises(SimulationError, match="collides"):
            mshr.allocate_batch(
                np.array([1.0]), np.array([64], dtype=np.uint64)
            )

    def test_full_file_back_pressure_rejected(self):
        """Occupancy above capacity (a would-be stall) must raise."""
        mshr = MshrFile("full", 1)
        alloc = np.array([1.0, 2.0])
        release = np.array([10.0, 11.0])  # both in flight at t=2
        mshr.allocate_batch(alloc, np.array([64, 128], dtype=np.uint64))
        with pytest.raises(ValueError, match="exceeds capacity"):
            mshr.release_batch(release)

    def test_release_at_allocation_time_rejected(self):
        mshr = MshrFile("tie", 4)
        mshr.allocate_batch(
            np.array([1.0, 2.0]), np.array([64, 128], dtype=np.uint64)
        )
        with pytest.raises(SimulationError, match="collision"):
            mshr.release_batch(np.array([2.0, 3.0]))


# -- MemoryController batch service ---------------------------------------------


def _controllers(latency_model):
    def make():
        engine = Engine()
        ctrl = MemoryController(
            engine,
            latency_model,
            peak_bw_bytes=100e9,
            achievable_fraction=0.8,
            line_bytes=64,
            stats=MemoryStats(),
            window_ns=500.0,
        )
        return engine, ctrl

    return make(), make()


_TABULATED = TabulatedLatencyModel(
    [(0.0, 80.0), (0.3, 95.0), (0.7, 160.0), (1.0, 310.0)]
)
_QUEUEING = QueueingLatencyModel(idle_ns=90.0)


class TestMemctrlBatchEquivalence:
    """plan_batch/commit_batch == scheduled scalar request() sequences."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 40),
        burst=st.booleans(),
        model=st.sampled_from([_TABULATED, _QUEUEING]),
    )
    def test_matches_scalar_requests(self, seed, n, burst, model):
        rng = np.random.default_rng(seed)
        if burst:
            # Zero-gap bursts: several requests share each issue instant.
            gaps = rng.uniform(0.0, 40.0, n) * (rng.random(n) < 0.4)
        else:
            gaps = rng.uniform(0.0, 400.0, n)
        issue = 1.0 + np.cumsum(gaps)

        (scalar_engine, scalar), (_, batch) = _controllers(model)
        completions = []
        for t in issue.tolist():
            def _request():
                scalar.request(
                    is_write=False,
                    is_prefetch=False,
                    on_complete=lambda: completions.append(scalar_engine.now),
                )

            scalar_engine.schedule_at(t, _request)
        scalar_engine.run()

        admit, latency = batch.plan_batch(issue)
        batch.commit_batch(issue, admit, latency)

        assert scalar.stats.requests == batch.stats.requests == n
        assert scalar.stats.demand_read_bytes == batch.stats.demand_read_bytes
        assert scalar.stats.latency_sum_ns == batch.stats.latency_sum_ns
        assert scalar.stats.latency_count == batch.stats.latency_count
        assert scalar._next_free_ns == batch._next_free_ns
        assert list(scalar._recent) == list(batch._recent)
        assert scalar._recent_bytes == batch._recent_bytes
        got = np.sort(admit + latency)
        want = np.sort(np.asarray(completions))
        assert got.tolist() == want.tolist()

    def test_plan_batch_does_not_mutate(self):
        _, (engine, ctrl) = _controllers(_TABULATED)
        issue = 1.0 + np.cumsum(np.full(8, 3.0))
        before = (ctrl._next_free_ns, list(ctrl._recent), ctrl._recent_bytes)
        first = ctrl.plan_batch(issue)
        after = (ctrl._next_free_ns, list(ctrl._recent), ctrl._recent_bytes)
        second = ctrl.plan_batch(issue)
        assert before == after
        assert first[0].tolist() == second[0].tolist()
        assert first[1].tolist() == second[1].tolist()


class TestLatencyModelBatch:
    """latency_ns_batch is elementwise bit-identical to latency_ns."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 64),
        model=st.sampled_from([_TABULATED, _QUEUEING]),
    )
    def test_elementwise_identical(self, seed, n, model):
        rng = np.random.default_rng(seed)
        utils = rng.uniform(0.0, 1.05, n)
        got = model.latency_ns_batch(utils)
        want = [model.latency_ns(float(u)) for u in utils.tolist()]
        assert got.tolist() == want

    def test_domain_errors_match_scalar(self):
        for model in (_TABULATED, _QUEUEING):
            with pytest.raises(ProfileDomainError):
                model.latency_ns_batch(np.array([0.2, 1.2]))
            with pytest.raises(ProfileDomainError):
                model.latency_ns_batch(np.array([-0.1]))
            with pytest.raises(ProfileDomainError):
                model.latency_ns_batch(np.array([np.nan]))


# -- CacheArray.fill_batch -------------------------------------------------------


def _fresh_cache(name="fill-test"):
    spec = CacheSpec(
        level=1, size_bytes=8192, line_bytes=64, mshrs=8, associativity=4
    )
    return CacheArray(spec, name)


class TestFillBatch:
    """fill_batch == sequential fill() under the miss-path preconditions."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 200))
    def test_matches_sequential_fill(self, seed, n):
        rng = np.random.default_rng(seed)
        # Unique absent lines (preconditions the planner guarantees).
        lines = (
            rng.choice(np.arange(1, 4096), size=min(n, 512), replace=False)
            * 64
        ).astype(np.uint64)
        batch_cache, scalar_cache = _fresh_cache("batch"), _fresh_cache("scalar")
        batch_cache.fill_batch(lines)
        for line in lines.tolist():
            assert scalar_cache.fill(int(line)) is None
        assert batch_cache._sets == scalar_cache._sets
        assert batch_cache.fills == scalar_cache.fills
        assert batch_cache.evictions == scalar_cache.evictions
        assert batch_cache.dirty_evictions == scalar_cache.dirty_evictions == 0

    def test_dirty_victim_raises(self):
        cache = _fresh_cache()
        set_lines = [(1 + i * cache.num_sets) * 64 for i in range(cache.ways)]
        for line in set_lines:
            cache.fill(line, dirty=(line == set_lines[0]))
        overflow = np.array(
            [(1 + cache.ways * cache.num_sets) * 64], dtype=np.uint64
        )
        with pytest.raises(SimulationError, match="dirty"):
            cache.fill_batch(overflow)


# -- end-to-end: engagement, fingerprints, fallback reasons ----------------------


def _scatter(machine, accesses=4000, gap_cycles=400.0):
    return scatter_trace(
        threads=1,
        accesses_per_thread=accesses,
        line_bytes=machine.line_bytes,
        gap_cycles=gap_cycles,
    )


class TestMissBatchEndToEnd:
    @pytest.mark.parametrize("machine_name", ["skl", "knl", "a64fx"])
    @pytest.mark.parametrize("hw_prefetch", [False, True])
    def test_scatter_engages_and_matches(self, machine_name, hw_prefetch):
        machine = get_machine(machine_name)
        common = dict(
            machine=machine,
            sim_cores=1,
            window_per_core=12,
            tlb_entries=0,
            hw_prefetch=hw_prefetch,
        )
        trace = _scatter(machine)
        event = run_trace(trace, SimConfig(batch=False, **common))
        batch = run_trace(trace, SimConfig(batch=True, **common))
        assert event.fingerprint() == batch.fingerprint()
        assert batch.batch_miss_accesses > 0.9 * batch.issued_total()
        assert batch.events_fired < event.events_fired / 10

    def test_batch_miss_off_restricts_to_hit_runs(self):
        machine = get_machine("knl")
        common = dict(machine=machine, sim_cores=1, window_per_core=12, tlb_entries=0)
        trace = _scatter(machine, accesses=1500)
        event = run_trace(trace, SimConfig(batch=False, **common))
        off = run_trace(trace, SimConfig(batch=True, batch_miss=False, **common))
        assert event.fingerprint() == off.fingerprint()
        assert off.batch_miss_accesses == 0

    def test_non_drainable_gap_falls_back_with_reason(self):
        """Continuous high-MLP streams replay through the event engine."""
        machine = get_machine("skl")
        trace = Trace(
            threads=(pointer_chase_trace(1500, machine.line_bytes),),
            routine="chase",
            line_bytes=machine.line_bytes,
        )
        common = dict(machine=machine, sim_cores=1, window_per_core=12, tlb_entries=0)
        event = run_trace(trace, SimConfig(batch=False, **common))
        batch = run_trace(trace, SimConfig(batch=True, **common))
        assert event.fingerprint() == batch.fingerprint()
        assert batch.batch_miss_accesses == 0
        assert "handoff" in batch.batch_fallbacks

    def test_smt_fallback_reason_recorded(self):
        """The silently-inert-under-SMT case is now diagnosable."""
        machine = get_machine("knl")  # 4-way SMT
        trace = scatter_trace(
            threads=2,
            accesses_per_thread=600,
            line_bytes=machine.line_bytes,
        )
        stats = run_trace(
            trace,
            SimConfig(
                machine=machine,
                sim_cores=1,
                threads_per_core=2,
                window_per_core=12,
                batch=True,
            ),
        )
        assert stats.batch_accesses == 0
        assert stats.batch_fallbacks.get("smt") == 1

    def test_l3_fallback_reason_recorded(self):
        machine = get_machine("skl")
        trace = _scatter(machine, accesses=600)
        stats = run_trace(
            trace,
            SimConfig(
                machine=machine,
                sim_cores=1,
                window_per_core=12,
                batch=True,
                l3_enabled=True,
            ),
        )
        assert stats.batch_fallbacks.get("l3") == 1

    def test_fallback_counters_are_not_semantic(self):
        machine = get_machine("skl")
        trace = _scatter(machine, accesses=600)
        stats = run_trace(
            trace,
            SimConfig(machine=machine, sim_cores=1, window_per_core=12, batch=True),
        )
        doc = stats.to_dict()
        assert "batch_fallbacks" in doc and "batch_miss_accesses" in doc
        fp = stats.fingerprint()
        stats.batch_miss_accesses = 0
        stats.batch_fallbacks = {"synthetic": 3}
        assert stats.fingerprint() == fp
