"""Machine specs and registry: the Table III substrate."""

import dataclasses

import pytest

from repro.errors import ConfigurationError, UnknownMachineError
from repro.machines import (
    CacheSpec,
    MemorySpec,
    VectorSpec,
    get_machine,
    machine_names,
    make_machine,
    paper_machines,
    register_machine,
)


class TestCacheSpec:
    def test_num_lines_and_sets(self):
        cache = CacheSpec(1, 32 * 1024, 64, 10, associativity=8)
        assert cache.num_lines == 512
        assert cache.num_sets == 64

    def test_rejects_bad_level(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(4, 32 * 1024, 64, 10)

    def test_rejects_size_not_multiple_of_line(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(1, 1000, 64, 10)

    def test_rejects_negative_mshrs(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(1, 32 * 1024, 64, -1)


class TestVectorSpec:
    def test_lanes_double_precision(self):
        assert VectorSpec("AVX-512", 512).lanes(8) == 8

    def test_lanes_single_precision(self):
        assert VectorSpec("SVE", 512).lanes(4) == 16

    def test_lanes_rejects_bad_element(self):
        with pytest.raises(ConfigurationError):
            VectorSpec("AVX-512", 512).lanes(0)


class TestMemorySpec:
    def test_achievable_bandwidth(self):
        mem = MemorySpec("DDR4", 128e9, 80.0, achievable_fraction=0.87)
        assert mem.achievable_bw_bytes == pytest.approx(111.36e9)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            MemorySpec("DDR4", 128e9, 80.0, achievable_fraction=1.5)


class TestPaperMachines:
    """Table III values, verbatim."""

    def test_skl(self, skl):
        assert skl.cores == 24
        assert skl.frequency_ghz == pytest.approx(2.1)
        assert skl.peak_bw_gbs == pytest.approx(128.0)
        assert skl.l1.mshrs == 10
        assert skl.l2.mshrs == 16
        assert skl.line_bytes == 64
        assert skl.smt_ways == 2

    def test_knl(self, knl):
        assert knl.cores == 68
        assert knl.active_cores == 64  # paper uses 64 of 68
        assert knl.peak_bw_gbs == pytest.approx(400.0)
        assert knl.l1.mshrs == 12
        assert knl.l2.mshrs == 32
        assert knl.smt_ways == 4
        assert knl.prefetch_streams == 16  # the HPCG 4-way-SMT explanation

    def test_a64fx(self, a64fx):
        assert a64fx.cores == 48
        assert a64fx.peak_bw_gbs == pytest.approx(1024.0)
        assert a64fx.line_bytes == 256  # the "large cache lines" X-Mem note
        assert a64fx.smt_ways == 1  # "A64FX does not support SMT"
        assert a64fx.l1.mshrs == 12
        assert a64fx.l2.mshrs == 20

    def test_knl_peak_gflops_matches_figure2_roof(self, knl):
        assert knl.peak_gflops == pytest.approx(2867.2, rel=0.01)

    def test_mshr_bandwidth_ceiling_matches_figure2(self, knl):
        # 12 L1 MSHRs x 64B x 64 cores / 192ns = 256 GB/s (paper Fig. 2).
        assert knl.max_bw_from_mshrs(1, 192.0) == pytest.approx(256e9, rel=0.01)

    def test_mshr_limit_rejects_l3(self, skl):
        with pytest.raises(ConfigurationError):
            skl.mshr_limit(3)

    def test_with_frequency(self, skl):
        slow = skl.with_frequency(1.0e9)
        assert slow.frequency_ghz == pytest.approx(1.0)
        assert slow.cores == skl.cores

    def test_describe_mentions_key_facts(self, a64fx):
        text = a64fx.describe()
        assert "48 cores" in text and "HBM2" in text and "256B lines" in text


class TestRegistry:
    def test_names(self):
        assert set(machine_names()) >= {"skl", "knl", "a64fx"}

    def test_aliases(self):
        assert get_machine("Skylake").name == "skl"
        assert get_machine("XEON-PHI-7250").name == "knl"

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(UnknownMachineError) as err:
            get_machine("epyc")
        assert "skl" in str(err.value)

    def test_paper_machines_order(self, all_machines):
        assert [m.name for m in paper_machines()] == ["skl", "knl", "a64fx"]

    def test_register_and_overwrite_guard(self, skl):
        register_machine("test-machine", lambda: skl, overwrite=True)
        assert get_machine("test-machine").name == "skl"
        with pytest.raises(ConfigurationError):
            register_machine("test-machine", lambda: skl)

    def test_cores_used_validation(self, skl):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(skl, cores_used=100)
