"""Internal consistency of the transcribed paper data."""

import pytest

from repro.core import mlp_from_bandwidth
from repro.experiments import CASE_STUDY_TABLES, base_row, rows_for
from repro.experiments.paperdata import TABLE3_PLATFORMS
from repro.machines import get_machine


class TestRowStructure:
    def test_six_tables(self):
        assert len(CASE_STUDY_TABLES) == 6

    def test_every_table_covers_three_machines(self):
        for name, rows in CASE_STUDY_TABLES.items():
            assert {r.proc for r in rows} == {"skl", "knl", "a64fx"}, name

    def test_every_machine_has_a_base_row(self):
        for name in CASE_STUDY_TABLES:
            for proc in ("skl", "knl", "a64fx"):
                assert base_row(name, proc).source == "base"

    def test_base_row_missing_raises(self):
        with pytest.raises(KeyError):
            base_row("isx", "epyc")

    def test_terminal_rows_have_no_speedup(self):
        for rows in CASE_STUDY_TABLES.values():
            for row in rows:
                assert (row.opt is None) == (row.speedup is None)

    def test_rows_for_filter(self):
        assert all(r.proc == "knl" for r in rows_for("isx", "knl"))


class TestLittlesLawConsistency:
    """The paper's own (BW, lat, n) triples must satisfy Equation 2.

    This is the checksum that validated the transcription and pinned
    down the per-core/256B-line reading of the paper's tables.
    """

    #: Rows where the paper's printed triple does NOT satisfy its own
    #: Equation 2 (documented in EXPERIMENTS.md "paper-internal tensions"):
    #: CoMD SKL "+ vect" prints n=0.29 but 4.56 GB/s x 82 ns / 64 B / 24
    #: cores = 0.243.
    PAPER_INCONSISTENT = {("comd", "skl", "+ vect")}

    @pytest.mark.parametrize(
        "workload", list(CASE_STUDY_TABLES), ids=list(CASE_STUDY_TABLES)
    )
    def test_all_rows(self, workload):
        platforms = {p.name: p for p in TABLE3_PLATFORMS}
        machines = {name: get_machine(name) for name in platforms}
        for row in CASE_STUDY_TABLES[workload]:
            if (workload, row.proc, row.source) in self.PAPER_INCONSISTENT:
                continue
            machine = machines[row.proc]
            n = mlp_from_bandwidth(
                row.bw_gbs * 1e9,
                row.lat_ns,
                machine.line_bytes,
                cores=machine.active_cores,
            )
            # Paper rounds to 2 decimals; allow 6% slack.
            assert n == pytest.approx(row.n_avg, rel=0.06), (
                f"{workload} {row.proc} {row.source}"
            )

    def test_bw_pct_column_consistent(self):
        for name, rows in CASE_STUDY_TABLES.items():
            for row in rows:
                machine = get_machine(row.proc)
                pct = 100.0 * row.bw_gbs / machine.peak_bw_gbs
                assert pct == pytest.approx(row.bw_pct, abs=1.6), (
                    f"{name} {row.proc} {row.source}"
                )


class TestOccupancyVsLimits:
    def test_no_row_materially_exceeds_binding_file(self):
        """Occupancies stay near/below the relevant MSHR file sizes."""
        for name, rows in CASE_STUDY_TABLES.items():
            for row in rows:
                machine = get_machine(row.proc)
                assert row.n_avg <= machine.l2.mshrs * 1.05, (
                    f"{name} {row.proc} {row.source}"
                )

    def test_isx_optimized_rows_exceed_l1_file(self):
        """The L2-prefetch rows are only possible via L2 MSHRs."""
        for row in CASE_STUDY_TABLES["isx"]:
            if "l2-pref" in row.source:
                machine = get_machine(row.proc)
                assert row.n_avg > machine.l1.mshrs
