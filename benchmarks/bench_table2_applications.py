"""E-T2: regenerate paper Table II (the application inventory)."""

from repro.experiments import check_table2
from repro.workloads import ALL_WORKLOADS


def _render() -> str:
    header = f"{'Application':<12s} {'Routine':<20s} Problem size"
    lines = ["Table II - applications", header, "-" * 70]
    for w in ALL_WORKLOADS:
        lines.append(f"{w.name:<12s} {w.routine:<20s} {w.problem_size}")
    return "\n".join(lines)


def test_table2_reproduction(benchmark, printed):
    checks = benchmark(check_table2)
    if "table2" not in printed:
        printed.add("table2")
        print("\n" + _render())
    assert all(c.ok for c in checks)
    assert len(ALL_WORKLOADS) == 6
