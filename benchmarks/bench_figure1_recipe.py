"""E-F1: regenerate paper Figure 1 as a decision procedure.

Walks every case-study optimization row through the recipe and reports
the aggregate prediction accuracy (the paper's headline claim: the
guidance "is indeed very appropriate").
"""

from repro.experiments import reproduce_figure1


def test_figure1_recipe_accuracy(benchmark, printed):
    fig1 = benchmark(reproduce_figure1)
    if "figure1" not in printed:
        printed.add("figure1")
        print("\n" + fig1.render())
    assert fig1.total >= 28
    assert fig1.unexplained_disagreements == 0
    assert fig1.accuracy == 1.0
