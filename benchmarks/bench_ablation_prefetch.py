"""E-A2: ablation — software-prefetch distance on the ISx unlock.

The paper's L2-prefetch win depends on the prefetch arriving a full
memory latency ahead of its demand.  :func:`prefetch_distance_sweep`
sweeps the software pipelining distance on the KNL ISx trace; the
crossover shows: short distances leave the L1 MSHR file pegged (late
prefetches), long distances migrate the bottleneck and buy bandwidth.
"""

from conftest import pedantic_once

from repro.experiments.ablation import prefetch_distance_sweep


def test_prefetch_distance_ablation(benchmark, printed):
    results = pedantic_once(benchmark, prefetch_distance_sweep)
    if "ablation-prefetch" not in printed:
        printed.add("ablation-prefetch")
        print(f"\n{'distance':>9s} {'L1 full':>8s} {'L2 occ':>7s} {'BW GB/s':>8s}")
        for r in results:
            print(
                f"{r.distance:>9d} {r.l1_full_fraction:>7.0%} "
                f"{r.l2_occupancy:>7.1f} {r.bandwidth_gbs:>8.1f}"
            )
    by_distance = {r.distance: r for r in results}
    base, far = by_distance[0], by_distance[64]
    assert base.l1_full_fraction > 0.8  # no prefetching: L1 pegged
    assert far.l1_full_fraction < 0.5 * base.l1_full_fraction
    assert far.l2_occupancy > 1.3 * base.l2_occupancy
    assert far.elapsed_ns < base.elapsed_ns
    # Timeliness matters: far-ahead beats near-distance prefetching.
    assert far.l1_full_fraction < by_distance[4].l1_full_fraction
