"""E-I1: the intro/related-work TMA critique on the simulator.

* SNAP/SKL: TMA's bandwidth/latency split is murky and its derived
  latency far below the true loaded latency, while the MLP analysis is
  actionable (paper Section I);
* the PEBS-style load-latency counter under-reports on streaming
  (hpcg) and over-reports on random (ISx) runs (paper Section II).
"""

from conftest import pedantic_once

from repro.experiments import (
    reproduce_intro_snap,
    reproduce_latency_counter_demo,
)


def test_snap_tma_vs_mlp(benchmark, printed):
    intro = pedantic_once(benchmark, reproduce_intro_snap, accesses_per_thread=2500)
    if "intro-snap" not in printed:
        printed.add("intro-snap")
        print("\n" + intro.render())
    assert intro.tma_guidance_is_unclear
    assert intro.tma_latency_misleading
    assert intro.mlp_guidance_is_actionable


def test_load_latency_counter_demo(benchmark, printed):
    demo = pedantic_once(
        benchmark, reproduce_latency_counter_demo, accesses_per_thread=2500
    )
    if "latency-demo" not in printed:
        printed.add("latency-demo")
        print("\n" + demo.render())
    assert demo.streaming_underreports
    assert demo.random_overreports
