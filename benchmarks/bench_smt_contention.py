"""E-SC: SMT cache-residency contention — the recipe-exception mechanism.

The paper's three recipe exceptions all blame hyperthread contention
for cache occupancy.  This bench reproduces the mechanism on the
simulator: the same total work placed on separate cores vs sharing one
core's caches.  CoMD's hot footprints collide in the L1; tiled
MiniGhost's reuse segments thrash the shared L2 (demand fetches to
memory up ~1.7x — the paper's KNL observation); random ISx has no
residency to lose and is unaffected.
"""

from conftest import pedantic_once

from repro.experiments import contention_survey


def test_smt_contention_split(benchmark, printed):
    results = pedantic_once(benchmark, contention_survey)
    if "smt-contention" not in printed:
        printed.add("smt-contention")
        print()
        for result in results:
            print(result.render())
    by_name = {r.workload: r for r in results}
    # Cache-reliant workloads contend...
    assert by_name["comd"].contended
    assert by_name["comd"].l1_miss_inflation > 1.5
    assert by_name["minighost"].contended
    assert by_name["minighost"].dram_demand_inflation > 1.3
    # ...the random control does not.
    assert not by_name["isx"].contended
