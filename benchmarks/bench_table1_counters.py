"""E-T1: regenerate paper Table I (counter visibility across vendors)."""

from repro.counters import table1_matrix
from repro.experiments import check_table1


def _render(matrix) -> str:
    header = (
        f"{'Processor':<10s} {'Breakdown of stalls':<20s} "
        f"{'L1-MSHRQ-full':<14s} {'L2-MSHRQ-full':<14s} {'Memory latency':<14s}"
    )
    lines = ["Table I - counter visibility", header, "-" * len(header)]
    for name, row in matrix.items():
        lines.append(
            f"{name:<10s} {row.stall_breakdown.value:<20s} "
            f"{row.l1_mshrq_full_stalls.value:<14s} "
            f"{row.l2_mshrq_full_stalls.value:<14s} {row.memory_latency.value:<14s}"
        )
    return "\n".join(lines)


def test_table1_reproduction(benchmark, printed):
    matrix = benchmark(table1_matrix)
    if "table1" not in printed:
        printed.add("table1")
        print("\n" + _render(matrix))
    checks = check_table1()
    assert all(c.ok for c in checks), [c.label for c in checks if not c.ok]
