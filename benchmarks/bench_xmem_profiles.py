"""E-X1: the once-per-machine X-Mem characterization, all three machines.

The paper's prerequisite artifact: measured bandwidth -> loaded-latency
profiles, with the ">= 2x idle at saturation" property the method
relies on.
"""

import pytest

from conftest import pedantic_once

from repro.machines import get_machine
from repro.xmem import XMemConfig, characterize_machine


@pytest.mark.parametrize("machine_name", ["skl", "knl", "a64fx"])
def test_xmem_characterization(benchmark, printed, machine_name):
    machine = get_machine(machine_name)
    profile = pedantic_once(
        benchmark,
        characterize_machine,
        machine,
        XMemConfig(levels=8, accesses_per_thread=1800),
    )
    key = f"xmem-{machine_name}"
    if key not in printed:
        printed.add(key)
        print(f"\nX-Mem profile for {machine.describe()}")
        for point in profile.points:
            print(f"  {point.bandwidth_gbs:8.1f} GB/s -> {point.latency_ns:6.1f} ns")
    saturated = profile.latency_at(profile.max_measured_bw_bytes)
    assert saturated > 1.4 * profile.idle_latency_ns
    assert profile.max_measured_bw_bytes > 0.7 * machine.memory.achievable_bw_bytes
