"""E-XV: cross-validate trace generators against analytic descriptors.

All 18 workload × machine base traces run through the discrete-event
simulator; the measured prefetch coverage must classify each routine
onto the binding MSHR file its analytic descriptor declares (random →
L1, streaming → L2), with matching occupancy signatures.  This is the
non-circular check that the Tables IV–IX engine rests on access
patterns the microarchitecture model actually produces.
"""

from conftest import pedantic_once

from repro.experiments import cross_validate, render_cross_validation


def test_trace_vs_descriptor_cross_validation(benchmark, printed):
    rows = pedantic_once(benchmark, cross_validate, accesses_per_thread=2000)
    if "cross-validation" not in printed:
        printed.add("cross-validation")
        print("\n" + render_cross_validation(rows))
    bad = [f"{r.workload}@{r.machine}" for r in rows if not r.ok]
    assert not bad, bad
    assert len(rows) == 18
