"""E-P3: the closed-form queueing fast path vs event-engine simulation.

Guards the headline claim of the ``--fast`` mode: a calibrated analytic
characterize — the profile *plus* the operating-point solves for every
paper workload — must answer at least :data:`FAST_SPEEDUP_FLOOR` times
faster than the uncached event-engine X-Mem sweep it replaces.  The
measured trajectory is recorded in ``BENCH_analytic_speedup.json`` by
``benchmarks/record_trajectory.py``.

``REPRO_BENCH_FLOOR`` overrides the speedup floor (for slow or heavily
shared CI hosts).
"""

import os
import time

from conftest import pedantic_once

from repro.machines import get_machine
from repro.perf.cache import SimCache
from repro.perfmodel.queueing import (
    analytic_profile,
    calibrate_from_probes,
    solve_operating_point_fast,
)
from repro.workloads import ALL_WORKLOADS
from repro.xmem.runner import XMemConfig, XMemRunner

#: Acceptance bar: analytic --fast must beat the event engine by at
#: least this factor.  Real measurements land around 5000x.
FAST_SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_FLOOR", "100"))

MACHINE = "skl"
SWEEP = XMemConfig(levels=6, accesses_per_thread=1500, batch=False)


def _fast_answer(machine, params):
    """One complete --fast characterize+advise answer (pure algebra)."""
    profile = analytic_profile(machine, params)
    points = [
        solve_operating_point_fast(
            machine,
            w.base_state(machine).demand_mlp,
            w.base_state(machine).binding_level,
            params=params,
        )
        for w in ALL_WORKLOADS
        if machine.name in w.machines()
    ]
    return profile, points


def test_fast_characterize_speedup(benchmark, printed, tmp_path):
    """Analytic --fast answers >= 100x faster than the event engine."""
    machine = get_machine(MACHINE)
    cache = SimCache(tmp_path, enabled=True)
    params = calibrate_from_probes(
        machine,
        sim_cores=SWEEP.sim_cores,
        accesses_per_thread=SWEEP.accesses_per_thread,
        cache=cache,
    )

    profile, points = pedantic_once(benchmark, _fast_answer, machine, params)
    fast_s = benchmark.stats.stats.mean

    # Time the event engine cache-inert: a warm global cache would make
    # the "simulation" side an unfairly fast JSON replay.
    from repro.perf.cache import configure_cache

    saved = os.environ.get("REPRO_CACHE")
    configure_cache(enabled=False)
    try:
        runner = XMemRunner(machine, SWEEP)
        start = time.perf_counter()
        measurements = runner.sweep()
        sim_s = time.perf_counter() - start
    finally:
        # Restore the pre-test environment, then rebuild the global
        # handle from it (configure_cache with no args re-reads env).
        if saved is None:
            os.environ.pop("REPRO_CACHE", None)
        else:
            os.environ["REPRO_CACHE"] = saved
        configure_cache()

    assert len(profile.points) >= 2
    assert all(p.bandwidth_bytes > 0 and p.latency_ns > 0 for p in points)
    assert measurements
    speedup = sim_s / fast_s if fast_s > 0 else float("inf")
    if "analytic-speedup" not in printed:
        printed.add("analytic-speedup")
        print(
            f"\nanalytic fast path: {fast_s * 1e3:.2f} ms vs event-engine "
            f"sweep {sim_s * 1e3:.0f} ms = {speedup:.0f}x "
            f"(floor {FAST_SPEEDUP_FLOOR:.0f}x)"
        )
    assert speedup >= FAST_SPEEDUP_FLOOR
