"""E-P2: columnar trace layer — generation + digest speedup.

Guards the tentpole claim of the structure-of-arrays trace layer: the
vectorized generators plus the zero-copy array digest must beat the
legacy pure-Python path (per-``Access`` object construction plus a
canonical-JSON digest) by at least 5x end to end.  The legacy path is
reproduced inline below, byte-for-byte equivalent in *shape* to the
pre-columnar code (same statistical structure, same per-access JSON
canonical form), so the comparison stays honest as the live code
evolves.
"""

import hashlib
import json
import random
import time

import numpy as np

from conftest import pedantic_once

from repro.sim.coltrace import ColumnarThreadTrace, ColumnarTrace, trace_digest
from repro.sim.trace import Access, AccessKind, ThreadTrace, Trace
from repro.workloads.generators import random_updates, spawn_thread_generator

THREADS = 4
ACCESSES = 50_000
LINE = 64
SPEEDUP_FLOOR = 5.0


# -- legacy baseline (the pre-columnar implementation, kept inline) -------------


def _legacy_random_updates(count, line_bytes, rng, *, gap_cycles=2.0,
                           write_fraction=0.5, region_bytes=128 * 1024 * 1024):
    """The old per-object generator loop: two RNG calls + one Access each."""
    lines = region_bytes // line_bytes
    targets = [rng.randrange(lines) * line_bytes for _ in range(count)]
    out = []
    for addr in targets:
        write = rng.random() < write_fraction
        kind = AccessKind.STORE if write else AccessKind.LOAD
        out.append(Access(addr, kind, gap_cycles))
    return out


def _legacy_digest(trace):
    """The old cache key: canonical JSON over every access, then SHA-256."""
    payload = {
        "routine": trace.routine,
        "line_bytes": trace.line_bytes,
        "threads": [
            [t.thread_id, [[a.addr, a.kind.value, a.gap_cycles] for a in t.accesses]]
            for t in trace.threads
        ],
    }
    doc = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def _legacy_generate_and_digest(seed=12345):
    rng = random.Random(seed)
    threads = []
    for t in range(THREADS):
        child = random.Random(rng.randrange(2**31))
        threads.append(
            ThreadTrace(t, tuple(_legacy_random_updates(ACCESSES, LINE, child)))
        )
    trace = Trace(tuple(threads), routine="bench", line_bytes=LINE)
    return _legacy_digest(trace)


# -- columnar path (the live implementation) ------------------------------------


def _columnar_generate_and_digest(seed=12345):
    rng = random.Random(seed)
    threads = []
    for t in range(THREADS):
        cols = random_updates(ACCESSES, LINE, spawn_thread_generator(rng))
        threads.append(ColumnarThreadTrace.from_columns(t, cols))
    trace = ColumnarTrace(tuple(threads), routine="bench", line_bytes=LINE)
    return trace_digest(trace)


def _best_of(func, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_columnar_generation_beats_legacy(benchmark, printed):
    legacy_s = _best_of(_legacy_generate_and_digest)
    digest = pedantic_once(benchmark, _columnar_generate_and_digest)
    columnar_s = benchmark.stats.stats.mean
    speedup = legacy_s / columnar_s
    if "trace-gen" not in printed:
        printed.add("trace-gen")
        print(
            f"\ntrace gen+digest ({THREADS}x{ACCESSES} accesses): "
            f"legacy {legacy_s * 1e3:.1f} ms, "
            f"columnar {columnar_s * 1e3:.1f} ms = {speedup:.1f}x"
        )
    assert len(digest) == 64
    assert speedup >= SPEEDUP_FLOOR


def test_zero_copy_digest_scales(benchmark, printed):
    # Digest alone on an already-built columnar trace: hashing raw array
    # bytes should stay in the hundreds of MB/s even on shared CI boxes.
    rng = np.random.default_rng(7)
    n = 1_000_000
    thread = ColumnarThreadTrace(
        0,
        rng.integers(0, 2**40, size=n, dtype=np.uint64),
        rng.integers(0, 4, size=n, dtype=np.uint8),
        rng.random(n),
    )
    trace = ColumnarTrace((thread,), routine="digest-bench", line_bytes=64)
    digest = pedantic_once(benchmark, trace_digest, trace)
    mean_s = benchmark.stats.stats.mean
    nbytes = sum(
        t.addr.nbytes + t.kind.nbytes + t.gap_cycles.nbytes for t in trace.threads
    )
    if "digest-rate" not in printed:
        printed.add("digest-rate")
        print(
            f"\nzero-copy digest: {nbytes / 1e6:.0f} MB in {mean_s * 1e3:.1f} ms "
            f"= {nbytes / mean_s / 1e9:.1f} GB/s"
        )
    assert len(digest) == 64
    # 17 MB of arrays must digest in well under a second (observed ~20 ms).
    assert mean_s < 1.0
