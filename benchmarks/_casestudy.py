"""Shared driver for the Table IV-IX case-study benchmarks."""

from __future__ import annotations

from repro.core import render_comparison_table
from repro.experiments import reproduce_table


def run_table_bench(benchmark, printed, workload_name: str) -> None:
    """Regenerate one case-study table, print it, and assert the bands."""
    table = benchmark(reproduce_table, workload_name)
    key = f"table-{workload_name}"
    if key not in printed:
        printed.add(key)
        print("\n" + table.render())
        print(
            render_comparison_table(
                f"paper-vs-measured ({workload_name})", table.comparison_rows()
            )
        )
    failures = [
        (c.label, c.result.step)
        for c in table.comparisons
        if not c.all_ok
    ]
    assert not failures, failures
