"""E-A1: ablation — how robust is the recipe's 100% score?

Two perturbations of the design choices DESIGN.md calls out, both
implemented in :mod:`repro.experiments.ablation`:

* **threshold sweep**: vary the FULL/NEAR-FULL occupancy thresholds and
  the bandwidth-saturation threshold, re-scoring all 37 rows at each
  setting — the chosen operating point (0.95/0.82/0.93) must sit on a
  plateau, not a knife edge;
* **latency-curve perturbation**: scale every machine's loaded-latency
  curve by ±10% (miscalibrated X-Mem) and confirm the row verdicts are
  largely insensitive — the method's portability claim depends on it.
"""

import pytest

from repro.experiments.ablation import (
    DEFAULT_THRESHOLDS,
    latency_curve_perturbation,
    threshold_sweep,
)


def test_threshold_plateau(benchmark, printed):
    scores = benchmark(threshold_sweep)
    if "ablation-thresholds" not in printed:
        printed.add("ablation-thresholds")
        print(f"\n{'full':>6s} {'near':>6s} {'sat':>6s}   accuracy (excl. exceptions)")
        for (full, near, sat), score in scores.items():
            print(
                f"{full:>6.2f} {near:>6.2f} {sat:>6.2f}   "
                f"{score.accuracy_excluding_exceptions:.0%} "
                f"({score.agree} agree, {score.disagree} disagree)"
            )
    assert scores[DEFAULT_THRESHOLDS].disagree == 0
    # Neighbouring settings lose at most a few rows: a plateau.
    for score in scores.values():
        assert score.accuracy_excluding_exceptions >= 0.90


@pytest.mark.parametrize("scale", [0.9, 1.1])
def test_latency_curve_perturbation(benchmark, printed, scale):
    result = benchmark.pedantic(
        latency_curve_perturbation, args=(scale,), rounds=1, iterations=1
    )
    key = f"ablation-curve-{scale}"
    if key not in printed:
        printed.add(key)
        print(
            f"\nlatency curves x{scale}: recipe verdicts stable on "
            f"{result.stable_rows}/{result.total_rows} rows "
            f"({result.stability:.0%})"
        )
    assert result.stability >= 0.9  # tolerates 10% miscalibration
