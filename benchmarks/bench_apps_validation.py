"""E-AP: real-kernel validation — the executable mini-apps on the DES.

The deepest non-circular check in the repository: reduced-scale
*implementations* of the six applications (real keys, a real 27-point
CSR matrix, real mesh indirection, real pair forces, a real transport
sweep, a real stencil) are executed, their results verified
numerically, and their **actual address streams** run through the
cache/MSHR simulator.  The measured signatures must land where the
paper puts each application: ISx/PENNANT random-bound on the L1 file,
HPCG/MiniGhost prefetch-covered on the L2 file, CoMD/SNAP low-occupancy
compute-shaped — and the ISx L2-prefetch unlock must reproduce from the
real kernel's addresses.
"""

from conftest import pedantic_once

from repro.apps import (
    ComdApp,
    HpcgApp,
    IsxApp,
    MinighostApp,
    PennantApp,
    SnapApp,
)
from repro.machines import get_machine
from repro.sim import SimConfig, run_trace


def _run_all():
    skl = get_machine("skl")
    knl = get_machine("knl")

    def simulate(trace, machine):
        return run_trace(
            trace, SimConfig(machine=machine, sim_cores=2, window_per_core=14)
        )

    isx = IsxApp(keys_per_thread=2000)
    hpcg = HpcgApp(n=8)
    pennant = PennantApp()
    comd = ComdApp(particles=400)
    minighost = MinighostApp()
    snap = SnapApp()

    rows = {}
    rows["isx"] = (isx.verify(), simulate(isx.extract_trace(skl), skl))
    rows["hpcg"] = (
        hpcg.verify(),
        simulate(hpcg.extract_trace(skl, max_rows=300), skl),
    )
    rows["pennant"] = (
        pennant.verify(),
        simulate(pennant.extract_trace(skl, max_corners=3500), skl),
    )
    rows["comd"] = (comd.verify(), simulate(comd.extract_trace(skl), skl))
    rows["minighost"] = (
        minighost.verify(),
        simulate(minighost.extract_trace(skl, max_cells=400), skl),
    )
    rows["snap"] = (
        snap.verify(),
        simulate(snap.extract_trace(skl, max_cells=120), skl),
    )
    # The unlock, from real keys:
    base = simulate(isx.extract_trace(knl), knl)
    pref = simulate(isx.extract_trace(knl, l2_prefetch=True), knl)
    rows["isx+l2pref"] = (True, (base, pref))
    return rows


def test_real_kernels_on_the_simulator(benchmark, printed):
    rows = pedantic_once(benchmark, _run_all)
    if "apps" not in printed:
        printed.add("apps")
        print(
            f"\n{'app':<11s} {'verified':>9s} {'pf frac':>8s} "
            f"{'L1 occ':>7s} {'L2 occ':>7s}"
        )
        for name, (ok, stats) in rows.items():
            if name == "isx+l2pref":
                continue
            print(
                f"{name:<11s} {str(ok):>9s} "
                f"{stats.memory.prefetch_fraction:>7.0%} "
                f"{stats.avg_occupancy(1):>7.2f} {stats.avg_occupancy(2):>7.2f}"
            )
        base, pref = rows["isx+l2pref"][1]
        print(
            f"isx l2-pref unlock (knl, real keys): BW "
            f"{base.bandwidth_bytes_per_s() / 1e9:.1f} -> "
            f"{pref.bandwidth_bytes_per_s() / 1e9:.1f} GB/s (slice), "
            f"L2 occ {base.avg_occupancy(2):.1f} -> {pref.avg_occupancy(2):.1f}"
        )

    # Every kernel verified numerically.
    assert all(ok for ok, _ in rows.values())
    # Paper signatures from real address streams:
    skl = get_machine("skl")
    assert rows["isx"][1].memory.prefetch_fraction < 0.3
    assert rows["pennant"][1].avg_occupancy(1) > 0.6 * skl.l1.mshrs
    assert rows["hpcg"][1].memory.prefetch_fraction > 0.4
    assert rows["minighost"][1].memory.prefetch_fraction > 0.3
    assert rows["comd"][1].avg_occupancy(1) < 0.3 * skl.l1.mshrs
    assert rows["snap"][1].avg_occupancy(2) < 0.5 * skl.l2.mshrs
    base, pref = rows["isx+l2pref"][1]
    assert pref.bandwidth_bytes_per_s() > 1.3 * base.bandwidth_bytes_per_s()
