"""Benchmark-suite helpers.

Each ``bench_*`` module regenerates one paper artifact (table or
figure).  Benchmarks print the regenerated rows once (so the harness
output doubles as the reproduction report) and time the regeneration
with pytest-benchmark.  Slow simulator-backed experiments use
``benchmark.pedantic`` with one round.
"""

from __future__ import annotations

import pytest


def pedantic_once(benchmark, func, *args, **kwargs):
    """Time ``func`` with a single round (for simulator-scale work)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def printed():
    """Session-level guard so each table prints exactly once."""
    return set()
