"""Record one simulator-throughput trajectory point.

Appends a snapshot of the repo's headline performance numbers to
``BENCH_sim_throughput.json`` at the repo root.  The file holds a JSON
list; each run appends one record (never overwrites), so it accumulates
a throughput trajectory across commits.  Each record captures:

* per-machine event-engine throughput (events/sec) on the standard
  X-Mem load workload;
* columnar trace-generation throughput (accesses/sec);
* warm content-addressed-cache replay speedup over re-simulation;
* batch-stepping fast-path speedup (accesses/sec ratio, hit-heavy
  workload) with its fingerprint-equality check;
* git SHA and UTC date for provenance.

Usage::

    PYTHONPATH=src python benchmarks/record_trajectory.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_sim_throughput.json"
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.machines import get_machine  # noqa: E402
from repro.perf.cache import SimCache, cached_run_trace  # noqa: E402
from repro.sim import SimConfig, run_trace  # noqa: E402
from repro.sim.coltrace import ColumnarThreadTrace, ColumnarTrace  # noqa: E402
from repro.workloads.generators import random_updates  # noqa: E402
from repro.xmem.kernels import resident_trace, throughput_trace  # noqa: E402

MACHINES = ("skl", "knl", "a64fx")
THREADS = 4
ACCESSES = 4000

#: Bumped when a record's shape changes; readers can dispatch on it.
SCHEMA_VERSION = 2


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _events_per_sec(machine_name: str) -> float:
    machine = get_machine(machine_name)
    trace = throughput_trace(
        threads=THREADS,
        accesses_per_thread=ACCESSES,
        line_bytes=machine.line_bytes,
        gap_cycles=10.0,
    )
    stats = run_trace(trace, SimConfig(machine=machine, sim_cores=THREADS))
    return stats.events_per_sec()


def _gen_throughput() -> float:
    """Columnar generation rate (accesses/sec) for the random-update mix."""
    import numpy as np

    n = 200_000
    start = time.perf_counter()
    threads = tuple(
        ColumnarThreadTrace.from_columns(
            t, random_updates(n, 64, np.random.default_rng(17 + t), region_id=t)
        )
        for t in range(THREADS)
    )
    ColumnarTrace(threads=threads, routine="trajectory", line_bytes=64)
    return THREADS * n / (time.perf_counter() - start)


def _warm_cache_speedup(tmp_dir: Path) -> float:
    machine = get_machine("skl")
    trace = throughput_trace(
        threads=THREADS,
        accesses_per_thread=ACCESSES,
        line_bytes=machine.line_bytes,
        gap_cycles=10.0,
    )
    config = SimConfig(machine=machine, sim_cores=THREADS)
    cache = SimCache(tmp_dir, enabled=True)
    cold = cached_run_trace(trace, config, cache=cache)
    start = time.perf_counter()
    cached_run_trace(trace, config, cache=cache)
    replay_s = time.perf_counter() - start
    return cold.wall_s / replay_s if replay_s > 0 else float("inf")


def _batch_speedup() -> dict:
    machine = get_machine("skl")
    trace = resident_trace(
        threads=THREADS,
        accesses_per_thread=40_000,
        line_bytes=machine.line_bytes,
    )
    event = run_trace(trace, SimConfig(machine=machine, sim_cores=THREADS, batch=False))
    batch = run_trace(trace, SimConfig(machine=machine, sim_cores=THREADS, batch=True))
    return {
        "speedup": batch.accesses_per_sec() / event.accesses_per_sec(),
        "batch_accesses_per_sec": batch.accesses_per_sec(),
        "event_accesses_per_sec": event.accesses_per_sec(),
        "batched_fraction": batch.batch_accesses / batch.issued_total(),
        "fingerprint_equal": batch.fingerprint() == event.fingerprint(),
    }


def load_history(path: Path) -> list:
    """The existing trajectory, or a fresh one if the file is unusable.

    The trajectory file is an accumulating artifact that survives
    branch switches, merges, and interrupted runs — a corrupt or
    missing file must cost one warning, not the measurement that was
    just taken.  The unusable original is preserved next to the new
    file as ``<name>.corrupt`` so nothing is silently destroyed.
    """
    if not path.exists():
        return []
    try:
        history = json.loads(path.read_text())
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        problem = f"unreadable ({exc})"
        history = None
    else:
        if isinstance(history, list):
            return history
        problem = f"not a JSON list (got {type(history).__name__})"
    backup = path.with_suffix(path.suffix + ".corrupt")
    try:
        path.replace(backup)
        kept = f"; original kept at {backup.name}"
    except OSError:
        kept = ""
    print(
        f"warning: {path.name} is {problem}; starting a fresh trajectory{kept}",
        file=sys.stderr,
    )
    return []


def append_point(path: Path, entry: dict) -> None:
    """Append one record to the trajectory file (never overwrites data)."""
    history = load_history(path)
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")


def record() -> dict:
    """Measure one trajectory point and append it to the JSON file."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        warm_speedup = _warm_cache_speedup(Path(tmp))
    entry = {
        "schema_version": SCHEMA_VERSION,
        "git_sha": _git_sha(),
        "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "events_per_sec": {m: _events_per_sec(m) for m in MACHINES},
        "trace_gen_accesses_per_sec": _gen_throughput(),
        "warm_cache_speedup": warm_speedup,
        "batch": _batch_speedup(),
    }
    append_point(OUT_PATH, entry)
    return entry


if __name__ == "__main__":
    point = record()
    batch = point["batch"]
    print(f"recorded trajectory point {point['git_sha'][:12]} -> {OUT_PATH}")
    for name, eps in point["events_per_sec"].items():
        print(f"  {name}: {eps / 1e3:.0f}k events/s")
    print(f"  trace gen: {point['trace_gen_accesses_per_sec'] / 1e6:.1f}M acc/s")
    print(f"  warm cache replay: {point['warm_cache_speedup']:.0f}x")
    print(
        f"  batch fast path: {batch['speedup']:.1f}x "
        f"(fingerprint equal: {batch['fingerprint_equal']})"
    )
