"""Record per-bench performance-trajectory points.

Each named bench appends a snapshot of its headline numbers to
``BENCH_<name>.json`` at the repo root.  Every file holds a JSON list;
each run appends one record (never overwrites), so the files accumulate
performance trajectories across commits.  Registered benches:

* ``sim_throughput`` — per-machine event-engine throughput (events/sec)
  on the standard X-Mem load workload, columnar trace-generation
  throughput, warm content-addressed-cache replay speedup, and the
  batch-stepping fast-path speedup with its fingerprint-equality check;
* ``analytic_speedup`` — the closed-form queueing fast path
  (``characterize --fast``): per-machine wall time of an analytic
  profile vs an uncached event-engine characterization sweep, and the
  resulting speedup factor.

Every record carries the git SHA and UTC date for provenance.

Usage::

    PYTHONPATH=src python benchmarks/record_trajectory.py [bench ...]

With no arguments every registered bench is recorded.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.machines import get_machine  # noqa: E402
from repro.machines.registry import paper_machines  # noqa: E402
from repro.perf.cache import SimCache, cached_run_trace  # noqa: E402
from repro.perfmodel.queueing import (  # noqa: E402
    analytic_profile,
    calibrate_from_probes,
)
from repro.sim import SimConfig, run_trace  # noqa: E402
from repro.sim.coltrace import ColumnarThreadTrace, ColumnarTrace  # noqa: E402
from repro.workloads.generators import random_updates  # noqa: E402
from repro.xmem.kernels import (  # noqa: E402
    resident_trace,
    scatter_trace,
    throughput_trace,
)
from repro.xmem.runner import XMemConfig, XMemRunner  # noqa: E402

MACHINES = ("skl", "knl", "a64fx")
THREADS = 4
ACCESSES = 4000

#: Bumped when a record's shape changes; readers can dispatch on it.
#: v3: sim_throughput records gain the ``miss_batch`` block.
SCHEMA_VERSION = 3


def out_path(bench: str) -> Path:
    """Trajectory file for one named bench (``BENCH_<name>.json``)."""
    return REPO_ROOT / f"BENCH_{bench}.json"


#: Back-compat alias: the original single-bench output location.
OUT_PATH = out_path("sim_throughput")


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _events_per_sec(machine_name: str) -> float:
    machine = get_machine(machine_name)
    trace = throughput_trace(
        threads=THREADS,
        accesses_per_thread=ACCESSES,
        line_bytes=machine.line_bytes,
        gap_cycles=10.0,
    )
    stats = run_trace(trace, SimConfig(machine=machine, sim_cores=THREADS))
    return stats.events_per_sec()


def _gen_throughput() -> float:
    """Columnar generation rate (accesses/sec) for the random-update mix."""
    import numpy as np

    n = 200_000
    start = time.perf_counter()
    threads = tuple(
        ColumnarThreadTrace.from_columns(
            t, random_updates(n, 64, np.random.default_rng(17 + t), region_id=t)
        )
        for t in range(THREADS)
    )
    ColumnarTrace(threads=threads, routine="trajectory", line_bytes=64)
    return THREADS * n / (time.perf_counter() - start)


def _warm_cache_speedup(tmp_dir: Path) -> float:
    machine = get_machine("skl")
    trace = throughput_trace(
        threads=THREADS,
        accesses_per_thread=ACCESSES,
        line_bytes=machine.line_bytes,
        gap_cycles=10.0,
    )
    config = SimConfig(machine=machine, sim_cores=THREADS)
    cache = SimCache(tmp_dir, enabled=True)
    cold = cached_run_trace(trace, config, cache=cache)
    start = time.perf_counter()
    cached_run_trace(trace, config, cache=cache)
    replay_s = time.perf_counter() - start
    return cold.wall_s / replay_s if replay_s > 0 else float("inf")


def _batch_speedup() -> dict:
    machine = get_machine("skl")
    trace = resident_trace(
        threads=THREADS,
        accesses_per_thread=40_000,
        line_bytes=machine.line_bytes,
    )
    event = run_trace(trace, SimConfig(machine=machine, sim_cores=THREADS, batch=False))
    batch = run_trace(trace, SimConfig(machine=machine, sim_cores=THREADS, batch=True))
    return {
        "speedup": batch.accesses_per_sec() / event.accesses_per_sec(),
        "batch_accesses_per_sec": batch.accesses_per_sec(),
        "event_accesses_per_sec": event.accesses_per_sec(),
        "batched_fraction": batch.batch_accesses / batch.issued_total(),
        "fingerprint_equal": batch.fingerprint() == event.fingerprint(),
    }


def _miss_batch_speedup() -> dict:
    """Batched miss retirement (ISSUE 10): cold scatter, drainable gaps."""
    machine = get_machine("knl")
    trace = scatter_trace(
        threads=1,
        accesses_per_thread=20_000,
        line_bytes=machine.line_bytes,
    )
    common = dict(machine=machine, sim_cores=1, window_per_core=12, tlb_entries=0)
    event = run_trace(trace, SimConfig(batch=False, **common))
    batch = run_trace(trace, SimConfig(batch=True, **common))
    return {
        "speedup": event.wall_s / batch.wall_s if batch.wall_s > 0 else float("inf"),
        "event_wall_s": event.wall_s,
        "batch_wall_s": batch.wall_s,
        "batched_fraction": batch.batch_miss_accesses / batch.issued_total(),
        "fingerprint_equal": batch.fingerprint() == event.fingerprint(),
    }


def _analytic_speedup() -> dict:
    """Closed-form fast path vs uncached event-engine characterization.

    Per paper machine: wall time of one full ``--fast`` answer (probe
    calibration cached, so what a warm query costs) against one uncached
    event-engine X-Mem sweep — the exact work ``characterize --fast``
    replaces.
    """
    import tempfile

    per_machine = {}
    config = XMemConfig(levels=6, accesses_per_thread=1500, batch=False)
    with tempfile.TemporaryDirectory() as tmp:
        cache = SimCache(Path(tmp), enabled=True)
        for machine in paper_machines():
            params = calibrate_from_probes(
                machine,
                sim_cores=config.sim_cores,
                accesses_per_thread=config.accesses_per_thread,
                cache=cache,
            )
            start = time.perf_counter()
            analytic_profile(machine, params)
            fast_s = time.perf_counter() - start
            runner = XMemRunner(machine, config)
            sim_s = _uncached_sweep_seconds(runner)
            per_machine[machine.name] = {
                "fast_s": fast_s,
                "sim_s": sim_s,
                "speedup": sim_s / fast_s if fast_s > 0 else float("inf"),
            }
    return per_machine


def _uncached_sweep_seconds(runner: XMemRunner) -> float:
    """Wall seconds for one event-engine characterization, cache-inert."""
    from repro.perf.cache import configure_cache
    import os

    saved_dir = os.environ.get("REPRO_CACHE_DIR")
    saved_enabled = os.environ.get("REPRO_CACHE")
    configure_cache(enabled=False)
    try:
        start = time.perf_counter()
        runner.characterize()
        return time.perf_counter() - start
    finally:
        if saved_dir is not None:
            os.environ["REPRO_CACHE_DIR"] = saved_dir
        if saved_enabled is not None:
            os.environ["REPRO_CACHE"] = saved_enabled
        else:
            os.environ.pop("REPRO_CACHE", None)
        configure_cache(enabled=True)


def load_history(path: Path) -> list:
    """The existing trajectory, or a fresh one if the file is unusable.

    The trajectory file is an accumulating artifact that survives
    branch switches, merges, and interrupted runs — a corrupt or
    missing file must cost one warning, not the measurement that was
    just taken.  The unusable original is preserved next to the new
    file as ``<name>.corrupt`` so nothing is silently destroyed.
    """
    if not path.exists():
        return []
    try:
        history = json.loads(path.read_text())
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        problem = f"unreadable ({exc})"
        history = None
    else:
        if isinstance(history, list):
            return history
        problem = f"not a JSON list (got {type(history).__name__})"
    backup = path.with_suffix(path.suffix + ".corrupt")
    try:
        path.replace(backup)
        kept = f"; original kept at {backup.name}"
    except OSError:
        kept = ""
    print(
        f"warning: {path.name} is {problem}; starting a fresh trajectory{kept}",
        file=sys.stderr,
    )
    return []


def append_point(path: Path, entry: dict) -> None:
    """Append one record to the trajectory file (never overwrites data)."""
    history = load_history(path)
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")


def _provenance() -> dict:
    """The fields every bench record shares."""
    return {
        "schema_version": SCHEMA_VERSION,
        "git_sha": _git_sha(),
        "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def _record_sim_throughput() -> dict:
    """Measure one ``sim_throughput`` trajectory record."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        warm_speedup = _warm_cache_speedup(Path(tmp))
    return {
        **_provenance(),
        "events_per_sec": {m: _events_per_sec(m) for m in MACHINES},
        "trace_gen_accesses_per_sec": _gen_throughput(),
        "warm_cache_speedup": warm_speedup,
        "batch": _batch_speedup(),
        "miss_batch": _miss_batch_speedup(),
    }


def _record_analytic_speedup() -> dict:
    """Measure one ``analytic_speedup`` trajectory record."""
    return {**_provenance(), "machines": _analytic_speedup()}


#: Registered benches: name -> zero-arg measurement function.
BENCHES = {
    "sim_throughput": _record_sim_throughput,
    "analytic_speedup": _record_analytic_speedup,
}


def record(benches=None) -> dict:
    """Measure the named benches (default: all) and append their points."""
    entries = {}
    for name in benches or sorted(BENCHES):
        if name not in BENCHES:
            raise SystemExit(
                f"unknown bench {name!r}; registered: {', '.join(sorted(BENCHES))}"
            )
        entry = BENCHES[name]()
        append_point(out_path(name), entry)
        entries[name] = entry
    return entries


def _summarize(name: str, entry: dict) -> None:
    """Print one bench record's headline numbers."""
    print(f"recorded {name} point {entry['git_sha'][:12]} -> {out_path(name).name}")
    if name == "sim_throughput":
        for mname, eps in entry["events_per_sec"].items():
            print(f"  {mname}: {eps / 1e3:.0f}k events/s")
        print(
            f"  trace gen: {entry['trace_gen_accesses_per_sec'] / 1e6:.1f}M acc/s"
        )
        print(f"  warm cache replay: {entry['warm_cache_speedup']:.0f}x")
        batch = entry["batch"]
        print(
            f"  batch fast path: {batch['speedup']:.1f}x "
            f"(fingerprint equal: {batch['fingerprint_equal']})"
        )
        miss = entry["miss_batch"]
        print(
            f"  miss batch fast path: {miss['speedup']:.1f}x "
            f"({miss['batched_fraction']:.0%} batched, "
            f"fingerprint equal: {miss['fingerprint_equal']})"
        )
    elif name == "analytic_speedup":
        for mname, row in entry["machines"].items():
            print(
                f"  {mname}: analytic {row['fast_s'] * 1e3:.1f} ms vs "
                f"sim {row['sim_s']:.2f} s = {row['speedup']:.0f}x"
            )


if __name__ == "__main__":
    for bench_name, bench_entry in record(sys.argv[1:] or None).items():
        _summarize(bench_name, bench_entry)
