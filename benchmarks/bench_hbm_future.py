"""E-G1: §IV-G outlook — HBM2e/3 parts are MSHR-bound before peak BW.

Sweeps streaming demand MLP on today's machines and the concept HBM
parts, printing each machine's MSHR-sustainable bandwidth fraction and
verifying the paper's claim: on the HBM parts the L2 MSHR file fills
long before peak bandwidth, making MSHRQ occupancy — not bandwidth
utilization — the reliable compute-bound certificate.
"""

from repro.machines import (
    get_machine,
    hbm2e_concept,
    hbm3_concept,
    mshr_bound_fraction,
    paper_machines,
)
from repro.perfmodel import solve_operating_point


def _sweep():
    machines = list(paper_machines()) + [hbm2e_concept(), hbm3_concept()]
    rows = []
    for machine in machines:
        point = solve_operating_point(machine, demand_mlp=1000.0, binding_level=2)
        rows.append(
            (
                machine.name,
                machine.peak_bw_gbs,
                point.bandwidth_bytes / machine.memory.peak_bw_bytes,
                point.n_sustained,
                mshr_bound_fraction(machine, loaded_latency_ns=point.latency_ns),
            )
        )
    return rows


def test_hbm_future_mshr_regime(benchmark, printed):
    rows = benchmark(_sweep)
    if "hbm-future" not in printed:
        printed.add("hbm-future")
        print(
            f"\n{'machine':<8s} {'peak GB/s':>10s} {'streaming BW/peak':>18s} "
            f"{'L2 MSHRs used':>14s} {'MSHR-sustainable/peak':>22s}"
        )
        for name, peak, frac, n, bound in rows:
            print(f"{name:<8s} {peak:>10.0f} {frac:>17.0%} {n:>14.0f} {bound:>21.0%}")
    by_name = {r[0]: r for r in rows}
    # Today's parts: streaming code reaches (near) achievable bandwidth.
    for name in ("skl", "knl", "a64fx"):
        assert by_name[name][2] > 0.75
    # HBM3 concept: the full L2 MSHR file feeds <50% of the pipe.
    assert by_name["hbm3"][2] < 0.5
    assert by_name["hbm3"][4] < 0.6
    # HBM2e sits in between but already below peak.
    assert by_name["hbm2e"][2] < 0.85
