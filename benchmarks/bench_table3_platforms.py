"""E-T3: regenerate paper Table III (the platform inventory)."""

from repro.experiments import check_table3
from repro.machines import paper_machines


def _render() -> str:
    lines = ["Table III - platforms"]
    for machine in paper_machines():
        lines.append(machine.describe())
    return "\n".join(lines)


def test_table3_reproduction(benchmark, printed):
    checks = benchmark(check_table3)
    if "table3" not in printed:
        printed.add("table3")
        print("\n" + _render())
    assert all(c.ok for c in checks)
