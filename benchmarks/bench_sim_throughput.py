"""E-P1: raw simulator throughput (events/sec) and cache/parallel wins.

Guards the hot-loop fast path in ``repro.sim``: a regression in the
event loop, MSHR bookkeeping, or cache-array indexing shows up here as
an events/sec drop long before it is visible in the paper tables.
Also times the ``repro.perf`` layer itself: a warm content-addressed
cache must beat re-simulation by a wide margin, and the batch-stepping
fast path must beat the pure event engine on hit-heavy work.

``REPRO_BENCH_FLOOR`` overrides the events/sec floor (for slow or
heavily shared CI hosts).
"""

import os

import pytest

from conftest import pedantic_once

from repro.machines import get_machine
from repro.perf.cache import SimCache, cached_run_trace, digest_for
from repro.sim import SimConfig, run_trace
from repro.xmem.kernels import resident_trace, scatter_trace, throughput_trace

THREADS = 4
ACCESSES = 4000

#: Loose events/sec floor — well below healthy rates (~300k+ on an idle
#: host), but high enough to catch pathological event-loop slowdowns.
EVENTS_PER_SEC_FLOOR = int(os.environ.get("REPRO_BENCH_FLOOR", "30000"))

#: The batch-stepping acceptance bar: accesses/sec on the L1-resident
#: workload must improve by at least this factor over the event engine.
BATCH_SPEEDUP_FLOOR = 5.0

#: The batched-miss acceptance bar (ISSUE 10): wall-clock on the cold
#: scatter workload must improve by at least this factor.  Speedup is a
#: same-host ratio so it tolerates slow CI machines, but noisy shared
#: hosts can still override it alongside ``REPRO_BENCH_FLOOR``.
MISS_BATCH_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_BENCH_FLOOR_MISS_BATCH", "3.0")
)


def _inputs(machine_name):
    machine = get_machine(machine_name)
    trace = throughput_trace(
        threads=THREADS,
        accesses_per_thread=ACCESSES,
        line_bytes=machine.line_bytes,
        gap_cycles=10.0,
    )
    return trace, SimConfig(machine=machine, sim_cores=THREADS)


@pytest.mark.parametrize("machine_name", ["skl", "knl", "a64fx"])
def test_sim_event_throughput(benchmark, printed, machine_name):
    trace, config = _inputs(machine_name)
    stats = pedantic_once(benchmark, run_trace, trace, config)
    key = f"throughput-{machine_name}"
    if key not in printed:
        printed.add(key)
        print(
            f"\n{machine_name}: {stats.events_fired} events in "
            f"{stats.wall_s:.3f}s host wall = "
            f"{stats.events_per_sec() / 1e3:.0f}k events/s"
        )
    assert stats.events_fired > 0
    assert stats.wall_s > 0
    # Floor well below any observed rate; catches pathological slowdowns
    # (observed ~65k events/s on a busy single-core CI container).
    assert stats.events_per_sec() > EVENTS_PER_SEC_FLOOR


def test_sim_batch_speedup(benchmark, printed):
    """Batch-stepping fast path: >= 5x accesses/sec on hit-heavy work."""
    machine = get_machine("skl")
    trace = resident_trace(
        threads=THREADS,
        accesses_per_thread=40_000,
        line_bytes=machine.line_bytes,
    )
    event_cfg = SimConfig(machine=machine, sim_cores=THREADS, batch=False)
    batch_cfg = SimConfig(machine=machine, sim_cores=THREADS, batch=True)
    event_stats = run_trace(trace, event_cfg)
    batch_stats = pedantic_once(benchmark, run_trace, trace, batch_cfg)

    assert batch_stats.fingerprint() == event_stats.fingerprint()
    assert batch_stats.batch_accesses > 0.9 * batch_stats.issued_total()
    speedup = batch_stats.accesses_per_sec() / event_stats.accesses_per_sec()
    if "batch-speedup" not in printed:
        printed.add("batch-speedup")
        print(
            f"\nbatch fast path: {batch_stats.accesses_per_sec() / 1e6:.2f}M "
            f"acc/s vs event {event_stats.accesses_per_sec() / 1e6:.2f}M "
            f"acc/s = {speedup:.1f}x "
            f"({batch_stats.batch_accesses}/{batch_stats.issued_total()} "
            "batched)"
        )
    assert speedup >= BATCH_SPEEDUP_FLOOR


def test_sim_miss_batch_speedup(benchmark, printed):
    """Batched miss retirement: >= 3x on the cold scatter workload.

    The scatter trace is the regime today's all-hit batch path
    degenerates to ~0% batched fraction on: nearly every access misses
    to memory.  With gaps above the loaded latency every fill drains
    before the next issue, so the miss fast path retires the whole
    trace closed-form and the event engine fires a constant handful of
    handoff events instead of ~5 per access.
    """
    machine = get_machine("knl")
    trace = scatter_trace(
        threads=1,
        accesses_per_thread=20_000,
        line_bytes=machine.line_bytes,
    )
    common = dict(machine=machine, sim_cores=1, window_per_core=12, tlb_entries=0)
    event_stats = run_trace(trace, SimConfig(batch=False, **common))
    batch_stats = pedantic_once(
        benchmark, run_trace, trace, SimConfig(batch=True, **common)
    )

    assert batch_stats.fingerprint() == event_stats.fingerprint()
    assert batch_stats.batch_miss_accesses > 0.9 * batch_stats.issued_total()
    speedup = event_stats.wall_s / batch_stats.wall_s
    if "miss-batch-speedup" not in printed:
        printed.add("miss-batch-speedup")
        print(
            f"\nmiss batch fast path: {batch_stats.wall_s * 1e3:.0f} ms vs "
            f"event {event_stats.wall_s * 1e3:.0f} ms = {speedup:.1f}x "
            f"({batch_stats.batch_miss_accesses}/{batch_stats.issued_total()} "
            f"batched, events {event_stats.events_fired}->"
            f"{batch_stats.events_fired})"
        )
    assert speedup >= MISS_BATCH_SPEEDUP_FLOOR


def test_warm_cache_beats_resimulation(benchmark, printed, tmp_path):
    trace, config = _inputs("skl")
    cache = SimCache(tmp_path, enabled=True)
    cold = cached_run_trace(trace, config, cache=cache)  # populate

    replayed = pedantic_once(benchmark, cached_run_trace, trace, config, cache=cache)

    assert cache.counters.hits == 1
    assert replayed.fingerprint() == cold.fingerprint()
    replay_s = benchmark.stats.stats.mean
    if "cache-replay" not in printed:
        printed.add("cache-replay")
        print(
            f"\ncache replay {replay_s * 1e3:.1f} ms vs "
            f"simulation {cold.wall_s * 1e3:.1f} ms "
            f"({cold.wall_s / replay_s:.0f}x)"
        )
    # The acceptance bar is >= 2x; real replays are orders faster.
    assert replay_s < cold.wall_s / 2


def test_digest_cost_is_cheap_relative_to_simulation(benchmark):
    # Keying the cache (canonical JSON + SHA-256 over the whole trace)
    # must stay a small fraction of simulating the same trace
    # (~100 ms digest vs ~800 ms simulation for this 16k-access case).
    trace, config = _inputs("skl")
    digest = pedantic_once(benchmark, digest_for, trace, config)
    assert len(digest) == 64
    assert benchmark.stats.stats.mean < 0.4
