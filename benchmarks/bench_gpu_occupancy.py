"""E-G2: §III-H — GPU MSHR-occupancy guidance on kernel archetypes.

Three kernels exercise the paper's GPU rules: a register hog (low
occupancy → cut registers), a streaming copy (full MSHRs → shared-
memory reuse), and an uncoalesced gather (coalescing first).
"""

from repro.gpu import GpuAction, GpuAdvisor, KernelDescriptor, a100_like

KERNELS = {
    "register_hog": KernelDescriptor(
        name="register_hog",
        threads_per_block=256,
        registers_per_thread=128,
        shared_mem_per_block_bytes=0,
        mlp_per_warp=2.0,
    ),
    "streaming_copy": KernelDescriptor(
        name="streaming_copy",
        threads_per_block=256,
        registers_per_thread=32,
        shared_mem_per_block_bytes=0,
        mlp_per_warp=4.0,
    ),
    "uncoalesced_gather": KernelDescriptor(
        name="uncoalesced_gather",
        threads_per_block=128,
        registers_per_thread=40,
        shared_mem_per_block_bytes=8 * 1024,
        mlp_per_warp=2.0,
        coalescing=0.25,
    ),
}


def _analyze_all():
    advisor = GpuAdvisor(a100_like())
    return {name: advisor.analyze(k) for name, k in KERNELS.items()}


def test_gpu_occupancy_guidance(benchmark, printed):
    analyses = benchmark(_analyze_all)
    if "gpu" not in printed:
        printed.add("gpu")
        print()
        for analysis in analyses.values():
            print(analysis.render())
            print()
    actions = {
        name: [r.action for r in a.recommendations] for name, a in analyses.items()
    }
    assert GpuAction.REDUCE_REGISTERS in actions["register_hog"]
    assert GpuAction.USE_SHARED_MEMORY in actions["streaming_copy"]
    assert actions["uncoalesced_gather"][0] is GpuAction.IMPROVE_COALESCING
