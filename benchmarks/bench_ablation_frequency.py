"""E-A3: ablation — the MLP metric is frequency-independent.

The paper pins core frequencies "to easily measure the benefit from
optimizations such as vectorization that can significantly alter core
frequency".  A deeper property makes that safe: ``n_avg`` is a
*memory-side* quantity (bandwidth × latency / line), so re-running the
analysis at different core frequencies must not move it — unlike
cycle-denominated metrics (stall cycles, latency-in-cycles), which all
scale with the clock.  This ablation verifies both halves.
"""

from repro.core import MlpCalculator
from repro.units import ns_to_cycles

FREQS_GHZ = (1.5, 2.1, 3.0)


def _sweep():
    from repro.machines import get_machine

    base = get_machine("skl")
    rows = []
    for freq in FREQS_GHZ:
        machine = base.with_frequency(freq * 1e9)
        result = MlpCalculator(machine).calculate_gbs(106.9)
        rows.append(
            {
                "freq": freq,
                "n_avg": result.n_avg,
                "latency_ns": result.latency_ns,
                "latency_cycles": ns_to_cycles(result.latency_ns, freq),
            }
        )
    return rows


def test_mlp_is_frequency_invariant(benchmark, printed):
    rows = benchmark(_sweep)
    if "ablation-frequency" not in printed:
        printed.add("ablation-frequency")
        print(f"\n{'GHz':>5s} {'n_avg':>7s} {'lat ns':>7s} {'lat cycles':>11s}")
        for r in rows:
            print(
                f"{r['freq']:>5.1f} {r['n_avg']:>7.2f} {r['latency_ns']:>7.0f} "
                f"{r['latency_cycles']:>11.0f}"
            )
    n_values = [r["n_avg"] for r in rows]
    assert max(n_values) - min(n_values) < 1e-9  # the portable metric
    cycle_values = [r["latency_cycles"] for r in rows]
    assert cycle_values[-1] > 1.5 * cycle_values[0]  # the fragile one
