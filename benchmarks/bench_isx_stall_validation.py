"""E-V1: ISx MSHR-stall migration on the cycle-level-simulator substitute.

Paper Section IV-A's separate validation: base ISx pegs the L1 MSHR
file; after L2 software prefetching the stalls collapse and the L2 MSHR
file becomes the busy queue.
"""

import pytest

from conftest import pedantic_once

from repro.experiments import reproduce_stall_migration


@pytest.mark.parametrize("machine_name", ["knl", "a64fx"])
def test_stall_migration(benchmark, printed, machine_name):
    result = pedantic_once(
        benchmark, reproduce_stall_migration, machine_name, accesses_per_thread=3500
    )
    key = f"stall-{machine_name}"
    if key not in printed:
        printed.add(key)
        print("\n" + result.render())
    assert result.base_l1_full_fraction > 0.5
    assert result.bottleneck_migrated
    assert result.bandwidth_improved
