"""E-F2: regenerate paper Figure 2 (ISx/KNL roofline + L1-MSHR ceiling).

Prints the plot series (intensity, classic bound, extended bound) plus
the two ISx points, and asserts the figure's argument: the base point
is pinned by the ~256 GB/s L1-MSHR ceiling despite classic-roofline
headroom, and the L2-prefetched point breaks through it.
"""

import pytest

from repro.experiments import FIGURE2, reproduce_figure2


def test_figure2_extended_roofline(benchmark, printed):
    fig2 = benchmark(reproduce_figure2)
    if "figure2" not in printed:
        printed.add("figure2")
        print("\n" + fig2.render())
        print(f"{'intensity':>10s} {'classic':>10s} {'extended':>10s}")
        for x, classic, extended in fig2.series[::4]:
            print(f"{x:>10.3f} {classic:>10.1f} {extended:>10.1f}")
    assert fig2.l1_ceiling_bw_gbs == pytest.approx(
        FIGURE2.l1_ceiling_bw_gbs, rel=0.05
    )
    assert fig2.base_pinned_by_ceiling
    assert fig2.optimized_breaks_ceiling
