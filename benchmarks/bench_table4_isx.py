"""E-TIV: regenerate paper Table IV (ISx case study) on all machines.

Rows: observed bandwidth, loaded latency, per-core MSHRQ occupancy, and
the speedup of each optimization the paper applies, compared against
the transcribed paper values within the DESIGN.md tolerance bands.
"""

from _casestudy import run_table_bench


def test_isx_case_study(benchmark, printed):
    run_table_bench(benchmark, printed, "isx")
